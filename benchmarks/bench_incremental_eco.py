"""Incremental ECO re-solve benchmark: legacy pad sweep vs the engine.

The workload is the greedy pad-placement sweep of
:mod:`repro.opt.pad_placement` — the canonical ECO loop: evaluate a pool
of candidate pad sites, commit the best, repeat.  Two arms:

- **legacy** re-simulates every trial netlist from scratch
  (parse → stamp → AMG setup → solve per candidate);
- **incremental** drives the same sweep over
  :class:`repro.solvers.incremental.IncrementalEngine`: one stamping +
  one AMG setup for the whole sweep, each candidate a rank-2
  Sherman–Morrison–Woodbury preview against the cached hierarchy.

Both arms must commit the same pads and report worst drops agreeing to
solver tolerance; the speedup is meaningless otherwise.  The incremental
arm is additionally timed under every available kernel backend
(``numpy`` always; ``numba`` when the ``[perf]`` extra is installed).

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental_eco.py          # full
    PYTHONPATH=src python benchmarks/bench_incremental_eco.py --tiny   # CI
    PYTHONPATH=src python benchmarks/bench_incremental_eco.py --tiny \
        --check benchmarks/artifacts/BENCH_pr7_tiny.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.kernels import available_backends, use_backend
from repro.data.synthetic import DesignSpec, generate_design
from repro.opt.pad_placement import greedy_pad_placement
from repro.solvers.cache import clear_setup_cache

from common import append_trajectory, attach_provenance, calibration_seconds

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Allowed calibrated slowdown of the incremental sweep vs the committed
#: baseline before --check fails (the CI regression gate).
REGRESSION_LIMIT = 1.25

#: The acceptance floor for the full-scale committed run: the incremental
#: engine must beat the legacy sweep by at least this factor.
MIN_SPEEDUP = 5.0


def build_netlist(tiny: bool):
    spec = DesignSpec(
        name="eco_bench",
        kind="fake",
        pixels=16 if tiny else 24,
        num_layers=2,
        supply_voltage=1.0,
        total_current=0.6,
        num_pads=4,
        seed=17,
    )
    return generate_design(spec).netlist


def sweep_kwargs(tiny: bool) -> dict:
    return dict(
        budget_volts=1e-9,  # unreachable: every round runs
        max_new_pads=2 if tiny else 3,
        max_candidates=6 if tiny else 12,
    )


def time_sweep(netlist, method: str, repeats: int, kwargs: dict):
    """Best-of-repeats wall time plus the final result for equivalence."""
    best = np.inf
    result = None
    for _ in range(repeats):
        clear_setup_cache()  # both arms start cold each repeat
        start = time.perf_counter()
        result = greedy_pad_placement(netlist, method=method, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


def run_bench(tiny: bool, repeats: int) -> dict:
    netlist = build_netlist(tiny)
    kwargs = sweep_kwargs(tiny)

    legacy_seconds, legacy = time_sweep(netlist, "legacy", repeats, kwargs)
    arms = {}
    incremental = None
    for backend in available_backends():
        with use_backend(backend):
            seconds, result = time_sweep(
                netlist, "incremental", repeats, kwargs
            )
        arms[backend] = {"seconds_best": seconds}
        if backend == "numpy":
            incremental = result
            incremental_seconds = seconds

    drop_diff = float(np.max(np.abs(
        np.asarray(legacy.worst_drop_history)
        - np.asarray(incremental.worst_drop_history)
    ))) if len(legacy.worst_drop_history) == len(
        incremental.worst_drop_history
    ) else float("inf")
    equivalence = {
        "same_pads": legacy.added_pads == incremental.added_pads,
        "worst_drop_max_abs_diff": drop_diff,
        "tolerance": 1e-6,
        "passed": (
            legacy.added_pads == incremental.added_pads
            and drop_diff <= 1e-6
        ),
    }

    calibration = calibration_seconds()
    return {
        "tiny": tiny,
        "repeats": repeats,
        "sweep": {k: v for k, v in kwargs.items()},
        "pads_added": incremental.added_pads,
        "legacy_seconds_best": legacy_seconds,
        "incremental_seconds_best": incremental_seconds,
        "speedup": legacy_seconds / incremental_seconds,
        "incremental_calibrated": incremental_seconds / calibration,
        "calibration_seconds": calibration,
        "backends": arms,
        "equivalence": equivalence,
    }


def check_regression(results: dict, baseline_path: Path) -> int:
    """CI gate: equivalence must hold, calibrated time must not regress."""
    if not results["equivalence"]["passed"]:
        print(f"FAIL: legacy/incremental disagree ({results['equivalence']})")
        return 1
    if not results["tiny"] and results["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {results['speedup']:.2f}x < {MIN_SPEEDUP}x")
        return 1
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("tiny") != results["tiny"]:
        print("FAIL: baseline and current run use different scales "
              f"(baseline tiny={baseline.get('tiny')}, "
              f"current tiny={results['tiny']}); compare like for like")
        return 1
    base = baseline["incremental_calibrated"]
    now = results["incremental_calibrated"]
    ratio = now / base
    print(f"calibrated ECO sweep: baseline={base:.3f} now={now:.3f} "
          f"ratio={ratio:.3f} (limit {REGRESSION_LIMIT})")
    if ratio > REGRESSION_LIMIT:
        print(f"FAIL: incremental sweep regressed {ratio:.2f}x vs baseline")
        return 1
    print("regression gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="reduced grid for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_pr7.json")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a committed BENCH_pr7 json and "
                             f"fail on >{(REGRESSION_LIMIT - 1):.0%} "
                             "calibrated regression")
    args = parser.parse_args(argv)

    results = attach_provenance(
        run_bench(tiny=args.tiny, repeats=args.repeats), "incremental_eco"
    )
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    append_trajectory({
        "bench": results["bench"],
        "git_sha": results["git_sha"],
        "timestamp": results["timestamp"],
        "tiny": results["tiny"],
        "speedup": results["speedup"],
        "incremental_calibrated": results["incremental_calibrated"],
    })

    print(f"wrote {args.out}")
    print(f"pad sweep: legacy={results['legacy_seconds_best'] * 1e3:.0f}ms "
          f"incremental={results['incremental_seconds_best'] * 1e3:.0f}ms "
          f"speedup={results['speedup']:.2f}x")
    for backend, row in results["backends"].items():
        print(f"backend {backend}: {row['seconds_best'] * 1e3:.0f}ms")
    print(f"equivalence: {results['equivalence']}")

    if args.check is not None:
        return check_regression(results, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
