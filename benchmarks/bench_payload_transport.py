"""Payload-transport benchmark: shared-memory vs inline pool pickling.

The workload is multi-deck batch analysis (:class:`repro.core.batch.
BatchAnalyzer`) under the spawn pool — the transport-heaviest path in
the repo: every task ships a full design in and an
:class:`~repro.core.pipeline.AnalysisResult` (features, drop maps,
solver report) back out.  Two arms per grid size:

- **inline** (``REPRO_SHM_THRESHOLD=0``): classic pickling, every byte
  crosses the worker pipe;
- **shm**: ndarrays above the threshold ride :mod:`repro.core.shm` as
  ~100-byte descriptors, only object scaffolding crosses the pipe.

Measured per arm: wall time (best of repeats) and pipe traffic (the
``transport.pickled_bytes`` counter delta, divided by task count).  The
arms must produce bitwise-identical results — and identity is further
checked across spawn/fork/serial execution, plus a sharded-trainer run
whose weight trajectories must match bitwise with the transport on and
off.

Usage::

    PYTHONPATH=src python benchmarks/bench_payload_transport.py          # full
    PYTHONPATH=src python benchmarks/bench_payload_transport.py --tiny   # CI
    PYTHONPATH=src python benchmarks/bench_payload_transport.py --tiny \
        --check benchmarks/artifacts/BENCH_pr8_tiny.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.batch import BatchAnalyzer
from repro.core.config import FusionConfig
from repro.core.pool import shutdown_pool
from repro.data.synthetic import generate_benchmark_suite
from repro.obs import metrics_snapshot
from repro.train.trainer import TrainConfig

from common import append_trajectory, attach_provenance, calibration_seconds

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Externalization threshold (bytes) for the shm arm.  Lower than the
#: 64 KiB production default so per-image arrays externalise at every
#: bench grid, not only the largest; the tiny CI scale drops it further
#: because a 16x16 fp64 image is only 2 KiB.
SHM_THRESHOLD = 8192
SHM_THRESHOLD_TINY = 2048


def shm_threshold_for(tiny: bool) -> int:
    return SHM_THRESHOLD_TINY if tiny else SHM_THRESHOLD

#: Allowed calibrated slowdown of the shm analyze arm vs the committed
#: baseline before --check fails (the CI regression gate).
REGRESSION_LIMIT = 1.3

#: Full-scale acceptance floor: per-task pipe bytes must shrink at least
#: this much at the largest grid.
MIN_BYTES_REDUCTION = 10.0


def make_pipeline(pixels: int, jobs: int) -> tuple[FusionConfig, object]:
    from repro.core.pipeline import IRFusionPipeline

    config = FusionConfig(
        pixels=pixels,
        depth=2,
        num_fake=3,
        num_real_train=1,
        num_real_test=1,
        solver_iterations=1,
        jobs=jobs,
        train=TrainConfig(epochs=2, batch_size=4),
    )
    pipeline = IRFusionPipeline(config)
    pipeline.train()
    return config, pipeline


def pickled_bytes() -> float:
    return metrics_snapshot()["counters"].get("transport.pickled_bytes", 0.0)


def run_arm(
    pipeline, designs, jobs: int, threshold: int, repeats: int
) -> tuple[dict, list[np.ndarray]]:
    """Time one transport arm and capture its predictions."""
    os.environ["REPRO_SHM_THRESHOLD"] = str(threshold)
    best = np.inf
    report = None
    bytes_per_task = None
    for _ in range(repeats):
        before = pickled_bytes()
        start = time.perf_counter()
        report = BatchAnalyzer(pipeline, jobs=jobs).analyze_designs(designs)
        best = min(best, time.perf_counter() - start)
        bytes_per_task = (pickled_bytes() - before) / len(designs)
    failed = [item.name for item in report.items if not item.ok]
    if failed:
        raise RuntimeError(f"analysis failed for {failed}")
    predictions = [item.result.predicted_drop for item in report.items]
    return (
        {"seconds_best": best, "pickled_bytes_per_task": bytes_per_task},
        predictions,
    )


def identical(a: list[np.ndarray], b: list[np.ndarray]) -> bool:
    return len(a) == len(b) and all(
        np.array_equal(x, y) for x, y in zip(a, b)
    )


def check_mode_identity(pipeline, designs, jobs: int, threshold: int) -> dict:
    """Bitwise identity of predictions across pool modes and transports."""
    os.environ["REPRO_SHM_THRESHOLD"] = str(threshold)
    runs = {}
    for mode in ("spawn", "fork", "serial"):
        os.environ["REPRO_POOL_MODE"] = mode
        report = BatchAnalyzer(pipeline, jobs=jobs).analyze_designs(designs)
        runs[mode] = [item.result.predicted_drop for item in report.items]
    os.environ["REPRO_POOL_MODE"] = "spawn"
    os.environ["REPRO_SHM_THRESHOLD"] = "0"
    report = BatchAnalyzer(pipeline, jobs=jobs).analyze_designs(designs)
    runs["spawn_inline"] = [item.result.predicted_drop for item in report.items]
    reference = runs["serial"]
    return {mode: identical(values, reference) for mode, values in runs.items()}


def check_train_identity(pixels: int, threshold: int) -> bool:
    """Sharded training must be bitwise-identical with the transport on/off."""
    from repro.train import trainer as trainer_module

    # The check needs real multi-worker sharding even on a 1-core CI
    # runner; the trajectory is jobs-invariant by construction, so
    # forcing two workers changes scheduling, never results.
    original = trainer_module._available_cores
    trainer_module._available_cores = lambda: max(2, os.cpu_count() or 1)
    states = {}
    try:
        for label, arm_threshold in (("shm", threshold), ("inline", 0)):
            os.environ["REPRO_SHM_THRESHOLD"] = str(arm_threshold)
            from repro.core.pipeline import IRFusionPipeline

            config = FusionConfig(
                pixels=pixels,
                depth=2,
                num_fake=2,
                num_real_train=1,
                num_real_test=1,
                solver_iterations=1,
                train=TrainConfig(epochs=2, jobs=2, grad_shards=2),
            )
            pipeline = IRFusionPipeline(config)
            pipeline.train()
            states[label] = pipeline.model.state_dict()
    finally:
        trainer_module._available_cores = original
    return all(
        np.array_equal(states["shm"][key], states["inline"][key])
        for key in states["shm"]
    )


def run_bench(tiny: bool, repeats: int) -> dict:
    os.environ["REPRO_POOL_MODE"] = "spawn"
    jobs = 2
    threshold = shm_threshold_for(tiny)
    grid_sizes = [16] if tiny else [16, 32, 48]
    num_decks = 3 if tiny else 6

    grids = {}
    for pixels in grid_sizes:
        _, pipeline = make_pipeline(pixels, jobs)
        designs = generate_benchmark_suite(
            num_decks - 1, 1, pixels=pixels, seed=11
        )
        inline, inline_pred = run_arm(pipeline, designs, jobs, 0, repeats)
        shm, shm_pred = run_arm(
            pipeline, designs, jobs, threshold, repeats
        )
        grids[str(pixels)] = {
            "tasks": len(designs),
            "inline": inline,
            "shm": shm,
            "bytes_reduction": (
                inline["pickled_bytes_per_task"]
                / max(shm["pickled_bytes_per_task"], 1.0)
            ),
            "wall_speedup": inline["seconds_best"] / shm["seconds_best"],
            "bitwise_identical": identical(inline_pred, shm_pred),
        }

    smallest = grid_sizes[0]
    _, pipeline = make_pipeline(smallest, jobs)
    identity_designs = generate_benchmark_suite(2, 1, pixels=smallest, seed=13)
    mode_identity = check_mode_identity(
        pipeline, identity_designs, jobs, threshold
    )
    train_identity = check_train_identity(smallest, threshold)
    shutdown_pool()

    largest = str(grid_sizes[-1])
    calibration = calibration_seconds()
    return {
        "tiny": tiny,
        "repeats": repeats,
        "jobs": jobs,
        "shm_threshold": threshold,
        "grids": grids,
        "largest_grid": largest,
        "bytes_reduction": grids[largest]["bytes_reduction"],
        "wall_speedup": grids[largest]["wall_speedup"],
        "identity": {
            "analyze_modes": mode_identity,
            "train_shm_vs_inline": train_identity,
            "passed": all(mode_identity.values()) and train_identity
            and all(row["bitwise_identical"] for row in grids.values()),
        },
        "shm_calibrated": grids[largest]["shm"]["seconds_best"] / calibration,
        "calibration_seconds": calibration,
    }


def check_regression(results: dict, baseline_path: Path) -> int:
    """CI gate: identity must hold, calibrated time must not regress."""
    if not results["identity"]["passed"]:
        print(f"FAIL: transports/modes disagree ({results['identity']})")
        return 1
    if results["bytes_reduction"] < 2.0:
        print(f"FAIL: per-task pipe bytes only shrank "
              f"{results['bytes_reduction']:.2f}x (floor 2x at any scale)")
        return 1
    if not results["tiny"] and results["bytes_reduction"] < MIN_BYTES_REDUCTION:
        print(f"FAIL: bytes reduction {results['bytes_reduction']:.1f}x "
              f"< {MIN_BYTES_REDUCTION}x at grid {results['largest_grid']}")
        return 1
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("tiny") != results["tiny"]:
        print("FAIL: baseline and current run use different scales "
              f"(baseline tiny={baseline.get('tiny')}, "
              f"current tiny={results['tiny']}); compare like for like")
        return 1
    base = baseline["shm_calibrated"]
    now = results["shm_calibrated"]
    ratio = now / base
    print(f"calibrated shm analyze: baseline={base:.3f} now={now:.3f} "
          f"ratio={ratio:.3f} (limit {REGRESSION_LIMIT})")
    if ratio > REGRESSION_LIMIT:
        print(f"FAIL: shm analyze regressed {ratio:.2f}x vs baseline")
        return 1
    print("regression gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="reduced grid for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_pr8.json")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a committed BENCH_pr8 json and "
                             f"fail on >{(REGRESSION_LIMIT - 1):.0%} "
                             "calibrated regression")
    args = parser.parse_args(argv)

    results = attach_provenance(
        run_bench(tiny=args.tiny, repeats=args.repeats), "payload_transport"
    )
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    append_trajectory({
        "bench": results["bench"],
        "git_sha": results["git_sha"],
        "timestamp": results["timestamp"],
        "tiny": results["tiny"],
        "bytes_reduction": results["bytes_reduction"],
        "wall_speedup": results["wall_speedup"],
        "shm_calibrated": results["shm_calibrated"],
    })

    print(f"wrote {args.out}")
    for pixels, row in results["grids"].items():
        print(f"grid {pixels}: inline "
              f"{row['inline']['pickled_bytes_per_task'] / 1e3:.0f}KB/task "
              f"{row['inline']['seconds_best'] * 1e3:.0f}ms | shm "
              f"{row['shm']['pickled_bytes_per_task'] / 1e3:.0f}KB/task "
              f"{row['shm']['seconds_best'] * 1e3:.0f}ms | "
              f"bytes x{row['bytes_reduction']:.1f} "
              f"wall x{row['wall_speedup']:.2f}")
    print(f"identity: {results['identity']}")

    if args.check is not None:
        return check_regression(results, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
