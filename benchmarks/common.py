"""Shared benchmark configuration and artifact helpers.

Benchmark scale is deliberately reduced from the paper's setup (256x256
images, 120 designs, long GPU training) to something a CPU finishes in
minutes: 32x32 designs, a 20-design suite, narrow models, ~a dozen epochs.
EXPERIMENTS.md records the shapes this reproduces versus the paper's
numbers.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.config import FusionConfig
from repro.train.trainer import TrainConfig

ARTIFACTS = Path(__file__).resolve().parent / "artifacts"


def bench_config(**overrides) -> FusionConfig:
    """The shared reduced-scale configuration for the paper benches."""
    defaults = dict(
        pixels=32,
        num_fake=12,
        num_real_train=5,
        num_real_test=4,
        data_seed=7,
        solver_iterations=2,
        base_channels=6,
        depth=3,
        model_seed=0,
        train=TrainConfig(epochs=16, batch_size=8, lr=1.5e-3),
        augment=True,
        oversample_fake=2,
        oversample_real=5,
    )
    defaults.update(overrides)
    return FusionConfig(**defaults)


def save_artifact(name: str, text: str) -> Path:
    """Write a rendered table/figure to benchmarks/artifacts/<name>."""
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    path = ARTIFACTS / name
    path.write_text(text + "\n", encoding="utf-8")
    return path
