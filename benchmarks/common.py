"""Shared benchmark configuration and artifact helpers.

Benchmark scale is deliberately reduced from the paper's setup (256x256
images, 120 designs, long GPU training) to something a CPU finishes in
minutes: 32x32 designs, a 20-design suite, narrow models, ~a dozen epochs.
EXPERIMENTS.md records the shapes this reproduces versus the paper's
numbers.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

import numpy as np

from repro.core.config import FusionConfig
from repro.train.trainer import TrainConfig

ARTIFACTS = Path(__file__).resolve().parent / "artifacts"
TRAJECTORY = ARTIFACTS / "trajectory.jsonl"
REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_config(**overrides) -> FusionConfig:
    """The shared reduced-scale configuration for the paper benches."""
    defaults = dict(
        pixels=32,
        num_fake=12,
        num_real_train=5,
        num_real_test=4,
        data_seed=7,
        solver_iterations=2,
        base_channels=6,
        depth=3,
        model_seed=0,
        train=TrainConfig(epochs=16, batch_size=8, lr=1.5e-3),
        augment=True,
        oversample_fake=2,
        oversample_real=5,
    )
    defaults.update(overrides)
    return FusionConfig(**defaults)


def save_artifact(name: str, text: str) -> Path:
    """Write a rendered table/figure to benchmarks/artifacts/<name>."""
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    path = ARTIFACTS / name
    path.write_text(text + "\n", encoding="utf-8")
    return path


def calibration_seconds(rounds: int = 5) -> float:
    """Fixed numpy workload: a machine-speed yardstick for CI comparisons.

    Benches divide their wall times by this so the regression gates
    compare *calibrated* numbers across runners of different speeds.
    """
    rng = np.random.default_rng(0)
    a = rng.standard_normal((256, 256))
    b = rng.standard_normal((256, 256))
    idx = rng.integers(0, 256 * 256, size=200_000)
    vals = rng.standard_normal(200_000)
    best = np.inf
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(10):
            c = a @ b
            np.bincount(idx, weights=vals, minlength=256 * 256)
            c.sum()
        best = min(best, time.perf_counter() - start)
    return best


def git_sha() -> str | None:
    """Current commit hash, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def attach_provenance(results: dict, bench: str) -> dict:
    """Stamp a result dict with bench name, commit and timestamp (in place).

    Every bench routes its JSON through this, so any artifact can be
    traced back to the commit that produced it.  The active kernel
    backend and pool mode are stamped too — perf numbers from different
    execution configurations must never be compared as if equivalent.
    """
    results["bench"] = bench
    results["git_sha"] = git_sha()
    results["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    results["backend"] = os.environ.get("REPRO_BACKEND", "numpy")
    results["pool_mode"] = os.environ.get("REPRO_POOL_MODE", "auto")
    return results


def append_trajectory(record: dict) -> Path:
    """Append one provenance-stamped record to the benchmark trajectory.

    The trajectory (``benchmarks/artifacts/trajectory.jsonl``) is an
    append-only JSONL log of headline numbers across commits — the
    cross-PR performance track record, one line per bench invocation.
    """
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    record.setdefault("backend", os.environ.get("REPRO_BACKEND", "numpy"))
    record.setdefault("pool_mode", os.environ.get("REPRO_POOL_MODE", "auto"))
    with TRAJECTORY.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return TRAJECTORY
