"""Supporting study (Fig. 3 context) — solver convergence comparison.

Residual-vs-iteration for CG, Jacobi-PCG and AMG-PCG on one PG system.
Expected shape: AMG-PCG converges in an order of magnitude fewer
iterations than plain CG — the property that makes rough-but-useful
solutions available after 1-2 iterations.
"""

from __future__ import annotations

import pytest

from common import bench_config, save_artifact
from repro.core.pipeline import IRFusionPipeline
from repro.eval.report import format_sweep_table
from repro.mna.stamper import build_reduced_system
from repro.solvers.amg_pcg import AMGPCGSolver
from repro.solvers.base import SolverOptions
from repro.solvers.cg import CGSolver, JacobiPCGSolver


@pytest.fixture(scope="module")
def pg_system():
    pipeline = IRFusionPipeline(bench_config())
    train_designs, _ = pipeline.generate_designs()
    return build_reduced_system(train_designs[0].grid)


def test_solver_convergence_comparison(benchmark, pg_system, capsys):
    options = SolverOptions(tol=1e-10, max_iterations=2000)

    def run_all():
        return {
            "CG": CGSolver(options).solve(pg_system.matrix, pg_system.rhs),
            "Jacobi-PCG": JacobiPCGSolver(options).solve(
                pg_system.matrix, pg_system.rhs
            ),
            "AMG-PCG": AMGPCGSolver(options).solve(
                pg_system.matrix, pg_system.rhs
            ),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        f"PG system: n={pg_system.size}, nnz={pg_system.matrix.nnz}",
        f"{'solver':<12s} {'iters':>6s} {'relres':>10s} "
        f"{'setup(s)':>9s} {'solve(s)':>9s}",
    ]
    for name, result in results.items():
        relres = pg_system.relative_residual(result.x)
        lines.append(
            f"{name:<12s} {result.iterations:>6d} {relres:>10.2e} "
            f"{result.setup_seconds:>9.4f} {result.solve_seconds:>9.4f}"
        )
    # residual decay table over the first 12 iterations
    depth = 12
    series = {
        name: (result.residual_norms + [result.residual_norms[-1]] * depth)[
            : depth
        ]
        for name, result in results.items()
    }
    table = format_sweep_table(
        list(range(depth)),
        series,
        title="Residual norm by iteration",
        value_format="{:>10.2e}",
    )
    text = "\n".join(lines) + "\n\n" + table
    save_artifact("solver_convergence.txt", text)
    with capsys.disabled():
        print("\n" + text)

    assert results["AMG-PCG"].converged
    assert results["AMG-PCG"].iterations * 2 < results["CG"].iterations


def test_benchmark_amg_pcg_solve(benchmark, pg_system):
    """Wall-clock of a full-accuracy AMG-PCG solve (setup cached)."""
    solver = AMGPCGSolver(SolverOptions(tol=1e-10))
    solver.setup(pg_system.matrix)
    result = benchmark(lambda: solver.solve(pg_system.matrix, pg_system.rhs))
    assert result.converged


def test_benchmark_rough_two_iterations(benchmark, pg_system):
    """Wall-clock of the fusion framework's 2-iteration rough solve."""
    solver = AMGPCGSolver(SolverOptions(tol=1e-16, max_iterations=2))
    solver.setup(pg_system.matrix)
    result = benchmark(lambda: solver.solve(pg_system.matrix, pg_system.rhs))
    assert result.iterations == 2
