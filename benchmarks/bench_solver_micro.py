"""Micro-benchmarks for the numerical substrate.

Times the pieces a PowerRush-style flow is made of: SPICE parsing, grid
construction, MNA stamping, AMG setup, one K-cycle application, and the
feature-extraction stage.  These catch performance regressions in the
substrate independent of any ML.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import generate_design, make_fake_spec
from repro.features.fusion import FeatureConfig, assemble_feature_stack
from repro.grid.netlist import PowerGrid
from repro.mna.stamper import build_reduced_system
from repro.solvers.amg import AMGOptions, build_hierarchy
from repro.solvers.cycles import CyclePreconditioner
from repro.solvers.powerrush import PowerRushSimulator
from repro.spice.parser import parse_spice
from repro.spice.writer import netlist_to_string


@pytest.fixture(scope="module")
def design():
    return generate_design(make_fake_spec("bench", seed=1, pixels=32))


@pytest.fixture(scope="module")
def deck_text(design):
    return netlist_to_string(design.netlist)


@pytest.fixture(scope="module")
def system(design):
    return build_reduced_system(design.grid)


def test_benchmark_spice_parse(benchmark, deck_text):
    netlist = benchmark(lambda: parse_spice(deck_text))
    assert len(netlist.resistors) > 1000


def test_benchmark_grid_build(benchmark, design):
    grid = benchmark(lambda: PowerGrid.from_netlist(design.netlist))
    assert grid.num_nodes == design.grid.num_nodes


def test_benchmark_mna_stamping(benchmark, design):
    system = benchmark(lambda: build_reduced_system(design.grid, validate=False))
    assert system.size > 0


def test_benchmark_amg_setup(benchmark, system):
    hierarchy = benchmark(lambda: build_hierarchy(system.matrix, AMGOptions()))
    assert hierarchy.num_levels >= 2


def test_benchmark_kcycle_apply(benchmark, system):
    hierarchy = build_hierarchy(system.matrix, AMGOptions())
    preconditioner = CyclePreconditioner(hierarchy)
    rhs = np.ones(system.size)
    out = benchmark(lambda: preconditioner.apply(rhs))
    assert np.isfinite(out).all()


def test_benchmark_feature_extraction(benchmark, design):
    report = PowerRushSimulator(max_iterations=2).simulate_grid(design.grid)

    def build():
        return assemble_feature_stack(
            design.geometry,
            design.grid,
            FeatureConfig(),
            voltages=report.voltages,
            supply_voltage=design.spec.supply_voltage,
        )

    stack = benchmark(build)
    assert stack.num_channels >= 10


def test_benchmark_golden_direct_solve(benchmark, system):
    from repro.solvers.direct import DirectSolver

    def solve():
        return DirectSolver().solve(system.matrix, system.rhs)

    result = benchmark(solve)
    assert result.converged
