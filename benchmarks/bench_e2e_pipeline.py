"""End-to-end pipeline benchmark: legacy hot paths vs the optimised ones.

Three measurements, written to ``BENCH_pr2.json``:

1. **analyze_design e2e** — the same trained pipeline analysing the same
   designs twice: once through the *legacy* hot paths (cold AMG setup on
   every solve, Python-loop feature rasterisation — faithful copies of
   the pre-optimisation implementations are patched in at every import
   site) and once through the shipped paths (warm AMG setup cache,
   vectorised scatters).  Both runs must agree numerically: solver
   voltages bitwise, feature/prediction maps to 1e-10 (reordered
   reductions).
2. **BatchAnalyzer scaling** — wall-clock for the same >=8-design batch
   at ``jobs`` = 1 / 2 / 4.  ``cpu_count`` is recorded alongside: on a
   single-core runner the parallel numbers legitimately show no speedup.
3. **calibration** — a fixed numpy workload timed on the same machine,
   so CI can compare *calibrated* analyze times across runners instead
   of raw wall-clock.

Usage::

    PYTHONPATH=src python benchmarks/bench_e2e_pipeline.py            # full
    PYTHONPATH=src python benchmarks/bench_e2e_pipeline.py --tiny     # CI
    PYTHONPATH=src python benchmarks/bench_e2e_pipeline.py --tiny \
        --check BENCH_pr2.json      # fail on >25% calibrated regression
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time
import warnings
from pathlib import Path

import numpy as np

from repro.core.batch import BatchAnalyzer
from repro.core.config import FusionConfig
from repro.core.pipeline import IRFusionPipeline
from repro.obs import trace
from repro.grid.geometry import GridGeometry
from repro.grid.netlist import PGNode, PowerGrid
from repro.grid.raster import rasterize as _new_rasterize
from repro.solvers.cache import clear_setup_cache, setup_cache_disabled
from repro.train.trainer import TrainConfig

from common import append_trajectory, attach_provenance, calibration_seconds

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Allowed calibrated slowdown of the optimised analyze path vs the
#: committed baseline before --check fails (the CI regression gate).
REGRESSION_LIMIT = 1.25


# ---------------------------------------------------------------------------
# Legacy implementations (faithful copies of the pre-optimisation code).
# These are the "before" side of the comparison; keep them verbatim.
# ---------------------------------------------------------------------------


def _legacy_rasterize(geometry, nodes, values, reduce="max", fill=0.0):
    if reduce not in ("max", "mean", "sum"):
        raise ValueError(f"unknown reduction {reduce!r}")
    if len(nodes) != len(values):
        raise ValueError(f"{len(nodes)} nodes but {len(values)} values")
    shape = geometry.shape
    if reduce == "max":
        image = np.full(shape, -np.inf, dtype=float)
    else:
        image = np.zeros(shape, dtype=float)
    counts = np.zeros(shape, dtype=np.int64)
    for node, value in zip(nodes, values):
        if node.structured is None:
            continue
        row, col = geometry.node_pixel(node.structured)
        counts[row, col] += 1
        if reduce == "max":
            if value > image[row, col]:
                image[row, col] = value
        else:
            image[row, col] += value
    empty = counts == 0
    if reduce == "mean":
        occupied = ~empty
        image[occupied] /= counts[occupied]
    image[empty] = fill
    return image


def _legacy_layer_values_image(
    geometry, grid, full_values, layer, reduce="max", fill=0.0
):
    if full_values.shape != (grid.num_nodes,):
        raise ValueError(
            f"expected one value per grid node ({grid.num_nodes}), "
            f"got shape {full_values.shape}"
        )
    nodes = grid.nodes_on_layer(layer)
    values = np.array([full_values[n.index] for n in nodes], dtype=float)
    return _legacy_rasterize(geometry, nodes, values, reduce=reduce, fill=fill)


def _legacy_pixels_on_span(geometry, start, end):
    (x0, y0), (x1, y1) = start, end
    r0, c0 = geometry.to_pixel(x0, y0)
    r1, c1 = geometry.to_pixel(x1, y1)
    if (r0, c0) == (r1, c1):
        return [(r0, c0)]
    if r0 == r1:
        lo, hi = sorted((c0, c1))
        return [(r0, c) for c in range(lo, hi + 1)]
    if c0 == c1:
        lo, hi = sorted((r0, r1))
        return [(r, c0) for r in range(lo, hi + 1)]
    steps = max(abs(r1 - r0), abs(c1 - c0))
    pixels = {
        (
            round(r0 + (r1 - r0) * t / steps),
            round(c0 + (c1 - c0) * t / steps),
        )
        for t in range(steps + 1)
    }
    return sorted(pixels)


def _legacy_resistance_map(geometry, grid):
    image = np.zeros(geometry.shape, dtype=float)
    skipped = 0
    for wire in grid.wires:
        if not np.isfinite(wire.resistance) or wire.resistance < 0:
            skipped += 1
            continue
        node_a = grid.node(wire.node_a)
        node_b = grid.node(wire.node_b)
        if node_a.structured is None or node_b.structured is None:
            continue
        pixels = _legacy_pixels_on_span(
            geometry, node_a.structured.position, node_b.structured.position
        )
        share = wire.resistance / len(pixels)
        for row, col in pixels:
            image[row, col] += share
    if skipped:
        warnings.warn(
            f"resistance_map: skipped {skipped} wire(s) with non-finite or "
            "negative resistance",
            RuntimeWarning,
            stacklevel=2,
        )
    return image


def _legacy_shortest_path_resistances(grid):
    import heapq

    distances = np.full(grid.num_nodes, np.inf, dtype=float)
    heap = []
    for pad in grid.pads():
        distances[pad.index] = 0.0
        heapq.heappush(heap, (0.0, pad.index))
    while heap:
        dist, node = heapq.heappop(heap)
        if dist > distances[node]:
            continue
        for wire in grid.wires_at(node):
            other = wire.other(node)
            candidate = dist + wire.resistance
            if candidate < distances[other]:
                distances[other] = candidate
                heapq.heappush(heap, (candidate, other))
    return distances


def _legacy_shortest_path_resistance_map(geometry, grid, layer=1):
    distances = _legacy_shortest_path_resistances(grid)
    if layer is None:
        nodes = [n for n in grid.nodes if n.structured is not None]
    else:
        nodes = grid.nodes_on_layer(layer)
    finite_nodes = [n for n in nodes if np.isfinite(distances[n.index])]
    if nodes and not finite_nodes:
        warnings.warn(
            "shortest_path_resistance_map: no node has a finite path "
            "resistance to a pad; returning zeros",
            RuntimeWarning,
            stacklevel=2,
        )
        return np.zeros(geometry.shape, dtype=float)
    dropped = len(nodes) - len(finite_nodes)
    if dropped:
        warnings.warn(
            f"shortest_path_resistance_map: ignoring {dropped} floating "
            "node(s) with infinite path resistance",
            RuntimeWarning,
            stacklevel=2,
        )
    values = np.array([distances[n.index] for n in finite_nodes], dtype=float)
    return _legacy_rasterize(geometry, finite_nodes, values, reduce="mean")


def _legacy_pdn_density_map(geometry, grid, layer=None):
    if layer is None:
        nodes = [n for n in grid.nodes if n.structured is not None]
    else:
        nodes = grid.nodes_on_layer(layer)
    ones = np.ones(len(nodes), dtype=float)
    return _legacy_rasterize(geometry, nodes, ones, reduce="sum")


def _legacy_connected_components(grid):
    import networkx as nx

    from repro.grid.topology import to_networkx

    return [set(c) for c in nx.connected_components(to_networkx(grid))]


def _legacy_floating_nodes(grid):
    pad_indices = {n.index for n in grid.pads()}
    floating = set()
    for component in _legacy_connected_components(grid):
        if component.isdisjoint(pad_indices):
            floating |= component
    return floating


@contextlib.contextmanager
def legacy_feature_paths():
    """Swap the legacy implementations in at every import site."""
    import repro.features.current as current
    import repro.features.density as density
    import repro.features.fusion as fusion
    import repro.features.numerical as numerical
    import repro.features.resistance as resistance
    import repro.grid.topology as topology
    import repro.solvers.powerrush as powerrush

    patches = [
        # validate/repair import these lazily, so the source module works.
        (topology, "connected_components", _legacy_connected_components),
        (topology, "floating_nodes", _legacy_floating_nodes),
        (fusion, "resistance_map", _legacy_resistance_map),
        (fusion, "shortest_path_resistance_map",
         _legacy_shortest_path_resistance_map),
        (fusion, "pdn_density_map", _legacy_pdn_density_map),
        (resistance, "resistance_map", _legacy_resistance_map),
        (resistance, "shortest_path_resistance_map",
         _legacy_shortest_path_resistance_map),
        (density, "pdn_density_map", _legacy_pdn_density_map),
        (current, "rasterize", _legacy_rasterize),
        (numerical, "layer_values_image", _legacy_layer_values_image),
        (powerrush, "layer_values_image", _legacy_layer_values_image),
    ]
    saved = [(mod, name, getattr(mod, name)) for mod, name, _ in patches]
    try:
        for mod, name, impl in patches:
            setattr(mod, name, impl)
        yield
    finally:
        for mod, name, impl in saved:
            setattr(mod, name, impl)


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def build_pipeline(tiny: bool) -> IRFusionPipeline:
    config = FusionConfig(
        pixels=16 if tiny else 32,
        num_fake=4,
        num_real_train=2,
        num_real_test=4,
        data_seed=7,
        solver_iterations=2,
        base_channels=4,
        depth=2 if tiny else 3,
        train=TrainConfig(epochs=1 if tiny else 2, batch_size=4),
        augment=False,
        oversample_fake=1,
        oversample_real=1,
    )
    pipeline = IRFusionPipeline(config)
    pipeline.train()
    return pipeline


def time_analyze(pipeline, designs, repeats: int) -> dict:
    """Per-repeat mean e2e seconds plus the stage breakdown.

    Each repeat runs under a :mod:`repro.obs` tracer and the stage
    numbers are read off the span tree (summed ``solve``/``features``/
    ``inference`` durations), so the breakdown is exactly what a traced
    ``analyze --trace`` run would export — one timing source, no private
    stopwatch drift.
    """
    totals, solver, feature, model = [], [], [], []
    for _ in range(repeats):
        start = time.perf_counter()
        with trace("bench_analyze") as tracer:
            for design in designs:
                pipeline.analyze_design(design)
        totals.append(time.perf_counter() - start)
        root = tracer.root
        analyses = [s for s in root.iter_spans() if s.name == "analyze"]
        solver.extend(s.total("solve") for s in analyses)
        feature.extend(s.total("features") for s in analyses)
        model.extend(s.total("inference") for s in analyses)
    return {
        "seconds_mean": float(np.mean(totals)) / len(designs),
        "seconds_best": float(np.min(totals)) / len(designs),
        "solver_seconds_mean": float(np.mean(solver)),
        "feature_seconds_mean": float(np.mean(feature)),
        "model_seconds_mean": float(np.mean(model)),
    }


def run_equivalence(pipeline, designs) -> dict:
    """Legacy path and optimised path must agree numerically."""
    volt_bitwise = True
    feat_diff = 0.0
    pred_diff = 0.0
    for design in designs:
        clear_setup_cache()
        with setup_cache_disabled(), legacy_feature_paths():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                legacy = pipeline.analyze_design(design)
        new = pipeline.analyze_design(design)
        volt_bitwise &= np.array_equal(
            legacy.report.voltages, new.report.voltages
        )
        feat_diff = max(
            feat_diff,
            float(np.abs(legacy.features.data - new.features.data).max()),
        )
        pred_diff = max(
            pred_diff,
            float(np.abs(legacy.predicted_drop - new.predicted_drop).max()),
        )
    return {
        "voltages_bitwise": bool(volt_bitwise),
        "features_max_abs_diff": feat_diff,
        "predicted_max_abs_diff": pred_diff,
        "tolerance": 1e-10,
        "passed": bool(volt_bitwise)
        and feat_diff <= 1e-10
        and pred_diff <= 1e-10,
    }


def run_batch_scaling(pipeline, designs) -> dict:
    scaling = {}
    for jobs in (1, 2, 4):
        report = BatchAnalyzer(pipeline, jobs=jobs).analyze_designs(designs)
        scaling[str(jobs)] = {
            "wall_seconds": report.total_seconds,
            "failed": report.num_failed,
            "degraded": report.degraded,
        }
    return {
        "num_designs": len(designs),
        "jobs": scaling,
        "note": (
            "near-linear scaling requires as many physical cores as jobs; "
            "compare against cpu_count"
        ),
    }


def run_bench(tiny: bool, repeats: int) -> dict:
    pipeline = build_pipeline(tiny)
    train_designs, test_designs = pipeline.generate_designs()
    all_designs = train_designs + test_designs  # >= 8 designs for the batch

    # Optimised path: warm the AMG setup cache, then measure.
    for design in test_designs:
        pipeline.analyze_design(design)
    optimized = time_analyze(pipeline, test_designs, repeats)

    # Legacy path: cold setup every solve + loop-based rasterisation.
    with setup_cache_disabled(), legacy_feature_paths():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            pipeline.analyze_design(test_designs[0])  # warm imports, not cache
            legacy = time_analyze(pipeline, test_designs, repeats)

    calibration = calibration_seconds()
    return {
        "bench": "e2e_pipeline",
        "tiny": tiny,
        "repeats": repeats,
        "pixels": pipeline.config.pixels,
        "num_designs_analyzed": len(test_designs),
        "cpu_count": os.cpu_count(),
        "calibration_seconds": calibration,
        "analyze_design": {
            "legacy": legacy,
            "optimized": optimized,
            "speedup": legacy["seconds_mean"] / optimized["seconds_mean"],
            # best-of-repeats over the machine yardstick: the noise-robust
            # number the CI regression gate compares across runners.
            "optimized_calibrated": optimized["seconds_best"] / calibration,
        },
        "equivalence": run_equivalence(pipeline, test_designs),
        "batch_scaling": run_batch_scaling(pipeline, all_designs),
    }


def check_regression(results: dict, baseline_path: Path) -> int:
    """CI gate: fail when the calibrated analyze time regresses >25%."""
    if not results["equivalence"]["passed"]:
        print("FAIL: legacy/optimized outputs disagree "
              f"({results['equivalence']})")
        return 1
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("tiny") != results["tiny"]:
        print("FAIL: baseline and current run use different scales "
              f"(baseline tiny={baseline.get('tiny')}, "
              f"current tiny={results['tiny']}); compare like for like")
        return 1
    base = baseline["analyze_design"]["optimized_calibrated"]
    now = results["analyze_design"]["optimized_calibrated"]
    ratio = now / base
    print(f"calibrated analyze: baseline={base:.3f} now={now:.3f} "
          f"ratio={ratio:.3f} (limit {REGRESSION_LIMIT})")
    if ratio > REGRESSION_LIMIT:
        print(f"FAIL: analyze_design regressed {ratio:.2f}x vs baseline")
        return 1
    print("regression gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="reduced grid for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_pr2.json")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a committed BENCH_pr2.json and "
                             f"fail on >{(REGRESSION_LIMIT - 1):.0%} "
                             "calibrated regression")
    args = parser.parse_args(argv)

    results = attach_provenance(
        run_bench(tiny=args.tiny, repeats=args.repeats), "e2e_pipeline"
    )
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    append_trajectory({
        "bench": results["bench"],
        "git_sha": results["git_sha"],
        "timestamp": results["timestamp"],
        "tiny": results["tiny"],
        "speedup": results["analyze_design"]["speedup"],
        "optimized_calibrated": (
            results["analyze_design"]["optimized_calibrated"]
        ),
    })

    analyze = results["analyze_design"]
    print(f"wrote {args.out}")
    print(f"analyze_design: legacy={analyze['legacy']['seconds_mean'] * 1e3:.1f}ms "
          f"optimized={analyze['optimized']['seconds_mean'] * 1e3:.1f}ms "
          f"speedup={analyze['speedup']:.2f}x")
    print(f"equivalence: {results['equivalence']}")
    for jobs, row in results["batch_scaling"]["jobs"].items():
        print(f"batch jobs={jobs}: wall={row['wall_seconds']:.2f}s "
              f"failed={row['failed']} degraded={row['degraded']}")

    if args.check is not None:
        return check_regression(results, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
