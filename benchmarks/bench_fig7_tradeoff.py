"""Fig. 7 — accuracy/efficiency trade-off vs PowerRush.

Sweeps the AMG-PCG iteration budget 1..10 and compares the pure numerical
result (PowerRush) against the fusion pipeline at the same budget.
Expected shapes from the paper:

- IR-Fusion beats PowerRush at every iteration count on MAE and F1;
- IR-Fusion reaches PowerRush's 10-iteration MAE within ~2 iterations;
- IR-Fusion attains F1 levels PowerRush only approaches at high budgets.
"""

from __future__ import annotations

from common import bench_config, save_artifact
from repro.core.experiment import run_tradeoff_study
from repro.eval.report import format_sweep_table

ITERATIONS = list(range(1, 11))


def test_fig7_tradeoff(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_tradeoff_study(bench_config(), iterations=ITERATIONS),
        rounds=1,
        iterations=1,
    )
    mae_table = format_sweep_table(
        result.iterations,
        {
            "PowerRush": [v * 1e4 for v in result.powerrush_mae],
            "IR-Fusion": [v * 1e4 for v in result.fusion_mae],
        },
        title="Fig. 7 (top): MAE (1e-4 V) vs solver iterations",
    )
    f1_table = format_sweep_table(
        result.iterations,
        {
            "PowerRush": result.powerrush_f1,
            "IR-Fusion": result.fusion_f1,
        },
        title="Fig. 7 (bottom): F1 vs solver iterations",
    )
    equivalent = result.equivalent_powerrush_iterations(at=2)
    caption = (
        f"\nIR-Fusion at 2 iterations matches PowerRush at "
        f"{equivalent if equivalent is not None else '>10'} iteration(s)."
    )
    text = mae_table + "\n\n" + f1_table + caption
    save_artifact("fig7_tradeoff.txt", text)
    with capsys.disabled():
        print("\n" + text)

    # Shape assertions.  Our small systems let AMG-PCG converge inside the
    # 10-iteration window (the paper's industrial systems do not), so the
    # reproducible shapes are the *pre-convergence* ones; EXPERIMENTS.md
    # discusses the difference.
    # (1) PowerRush improves monotonically-ish with iterations.
    assert result.powerrush_mae[-1] < result.powerrush_mae[0]
    # (2) In the rough regime (1-2 iterations) fusion is dramatically
    #     better than the pure solver.
    assert result.fusion_mae[0] < 0.5 * result.powerrush_mae[0]
    assert result.fusion_mae[1] < result.powerrush_mae[1]
    # (3) Fusion's cheap budgets are worth several pure-solver iterations.
    one_shot = result.equivalent_powerrush_iterations(at=1)
    assert one_shot is None or one_shot >= 3
    # (4) Fusion never *degrades* as the solver budget grows (it plateaus
    #     at its accuracy floor instead of diverging).
    assert max(result.fusion_mae[2:]) <= 2.5 * min(result.fusion_mae)
    # (5) Fusion's F1 in the rough regime far exceeds PowerRush's: the
    #     solver "may partially overlook the patterns associated with
    #     hotspots".
    assert min(result.fusion_f1[:3]) > max(result.powerrush_f1[:3]) + 0.3
