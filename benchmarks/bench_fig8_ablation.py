"""Fig. 8 — ablation study.

Retrains IR-Fusion with each technique removed and reports the MAE
increase (red bars) and F1 decrease (blue bars) relative to the full
model.  Expected shape: removing the numerical solution hurts MAE by far
the most; every removal degrades at least one metric.
"""

from __future__ import annotations

from common import bench_config, save_artifact
from repro.core.experiment import ABLATION_VARIANTS, run_ablation_study


def test_fig8_ablation(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_ablation_study(bench_config()), rounds=1, iterations=1
    )
    header = (
        f"{'Variant':<18s} {'MAE(1e-4V)':>11s} {'F1':>6s} "
        f"{'dMAE%':>8s} {'dF1%':>8s}"
    )
    lines = [
        "Fig. 8  Ablation study (positive dMAE% / dF1% = worse than full)",
        "-" * len(header),
        header,
        "-" * len(header),
        f"{'full IR-Fusion':<18s} {result.full.mae * 1e4:>11.2f} "
        f"{result.full.f1:>6.3f} {'--':>8s} {'--':>8s}",
    ]
    for name in ABLATION_VARIANTS:
        metrics = result.variants[name]
        lines.append(
            f"{name:<18s} {metrics.mae * 1e4:>11.2f} {metrics.f1:>6.3f} "
            f"{result.mae_increase_percent(name):>8.1f} "
            f"{result.f1_decrease_percent(name):>8.1f}"
        )
    text = "\n".join(lines)
    save_artifact("fig8_ablation.txt", text)
    with capsys.disabled():
        print("\n" + text)

    # Shape assertions.
    # (1) Removing the numerical solution is the most damaging for MAE.
    numerical_hit = result.mae_increase_percent("w/o Num. Solu.")
    assert numerical_hit == max(
        result.mae_increase_percent(name) for name in ABLATION_VARIANTS
    )
    assert numerical_hit > 0
    # (2) No variant improves on both metrics simultaneously.
    for name in ABLATION_VARIANTS:
        assert (
            result.mae_increase_percent(name) > -5.0
            or result.f1_decrease_percent(name) > -5.0
        )
