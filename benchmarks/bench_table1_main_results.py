"""Table I — main results.

Trains all seven methods (six baselines + IR-Fusion) on the shared
synthetic suite, evaluates MAE / F1 / runtime / MIRDE on the held-out real
designs, and prints the table in the paper's format.  Expected shape:
IR-Fusion has the lowest MAE and MIRDE and the highest F1, at the highest
runtime of the ML family (it pays for the AMG-PCG stage).
"""

from __future__ import annotations

import pytest

from common import bench_config, save_artifact
from repro.core.experiment import run_main_results
from repro.core.pipeline import IRFusionPipeline
from repro.eval.report import format_metrics_table
from repro.models.registry import DISPLAY_NAMES


def test_table1_main_results(benchmark, capsys):
    """Reproduce Table I end to end (one full training run per method)."""
    results = benchmark.pedantic(
        lambda: run_main_results(bench_config()), rounds=1, iterations=1
    )
    table = format_metrics_table(results, title="TABLE I  Main results")
    save_artifact("table1_main_results.txt", table)
    from common import ARTIFACTS
    from repro.eval.tables import save_metrics_csv

    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    save_metrics_csv(results, ARTIFACTS / "table1_main_results.csv")
    with capsys.disabled():
        print("\n" + table)

    fusion = results[DISPLAY_NAMES["ir_fusion"]]
    baselines = {
        name: metrics
        for name, metrics in results.items()
        if name != DISPLAY_NAMES["ir_fusion"]
    }
    # Paper shape: IR-Fusion wins every accuracy metric ...
    assert fusion.mae <= min(m.mae for m in baselines.values())
    assert fusion.f1 >= max(m.f1 for m in baselines.values())
    # ... at higher runtime than any pure-ML baseline (solver stage).
    assert fusion.runtime_seconds >= max(
        m.runtime_seconds for m in baselines.values()
    )


@pytest.fixture(scope="module")
def trained_pipeline():
    pipeline = IRFusionPipeline(bench_config())
    pipeline.train()
    return pipeline


def test_table1_analysis_runtime(benchmark, trained_pipeline):
    """Per-design end-to-end analysis latency (the runtime column cell)."""
    _, test_designs = trained_pipeline.generate_designs()
    design = test_designs[0]
    result = benchmark(lambda: trained_pipeline.analyze_design(design))
    assert result.predicted_drop.shape == design.geometry.shape
