"""Training throughput benchmark: serial fp64 vs the data-parallel
mixed-precision engine.

Four arms train the same model on the same extracted feature set, and the
per-epoch wall clock of each is written to ``BENCH_pr3.json``:

1. **serial_fp64** — the classic whole-batch loop (``jobs=1``,
   ``precision=fp64``): the bitwise-stable baseline every speedup is
   measured against.
2. **serial_mixed** — same loop on the fp32 compute path (fp64 master
   weights): isolates the kernel-precision win from the engine win.
3. **parallel_fp64** — ``jobs=4`` sharded engine at fp64: isolates the
   engine overhead/win at reference precision.
4. **parallel_mixed** — ``jobs=4 --precision mixed``: the headline
   configuration; the acceptance target is >= 2.5x the serial_fp64
   epoch throughput.

The sharded arms use the engine's auto decomposition
(``DEFAULT_GRAD_SHARDS`` shards per mini-batch, tree-reduced in fixed
order), so their trajectory is jobs-invariant.  Two final-loss contracts
are checked: the *precision* contract (parallel mixed vs parallel fp64 —
identical trajectory definition, tight tolerance) and the *sharding*
contract (parallel fp64 vs serial fp64 — different but convergent
trajectories, loose tolerance; see ``docs/performance.md``).

A fixed numpy *calibration* workload is timed alongside so CI can gate
on machine-normalised numbers instead of raw wall clock.

Usage::

    PYTHONPATH=src python benchmarks/bench_train_throughput.py           # full
    PYTHONPATH=src python benchmarks/bench_train_throughput.py --tiny    # CI
    PYTHONPATH=src python benchmarks/bench_train_throughput.py --tiny \
        --check benchmarks/artifacts/BENCH_pr3_tiny.json
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from pathlib import Path

import numpy as np

from common import bench_config
from repro.core.pipeline import IRFusionPipeline
from repro.models import create_model, preferred_loss
from repro.train.trainer import Trainer, TrainConfig

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Allowed calibrated slowdown of the parallel mixed arm vs the committed
#: baseline before --check fails (the CI regression gate).
REGRESSION_LIMIT = 1.25

#: Relative final-loss agreement required between the parallel fp64 and
#: parallel mixed arms: identical trajectory definition, so any gap is
#: purely the fp32 compute path (the precision contract).
PRECISION_LOSS_TOLERANCE = 1e-3

#: Relative final-loss agreement required between the serial and sharded
#: fp64 arms.  These are *different* (both valid) trajectories — ghost
#: batch-norm statistics and per-shard loss normalisation — that converge
#: to comparable optima, so mid-training the gap is loose (the sharding
#: contract; see docs/performance.md).
SHARDING_LOSS_TOLERANCE = 0.10

#: The acceptance target for parallel_mixed vs serial_fp64 (recorded in
#: the JSON; only enforced by --check in full mode, where the scale is
#: large enough for the ratio to be meaningful).
TARGET_SPEEDUP = 2.5


def calibration_seconds(rounds: int = 5) -> float:
    """Fixed numpy workload: a machine-speed yardstick for CI comparisons."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((256, 256))
    b = rng.standard_normal((256, 256))
    idx = rng.integers(0, 256 * 256, size=200_000)
    vals = rng.standard_normal(200_000)
    best = np.inf
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(10):
            c = a @ b
            np.bincount(idx, weights=vals, minlength=256 * 256)
            c.sum()
        best = min(best, time.perf_counter() - start)
    return best


def build_training_set(tiny: bool):
    """One shared feature-extraction pass; every arm trains on it."""
    if tiny:
        config = bench_config(
            pixels=16,
            num_fake=3,
            num_real_train=2,
            num_real_test=1,
            base_channels=4,
            depth=2,
            oversample_fake=2,
            oversample_real=2,
        )
    else:
        # 80x80 maps: large enough that kernel time (not Python overhead)
        # dominates an epoch, closer to the contest's real map sizes.
        config = bench_config(
            pixels=80,
            num_fake=6,
            num_real_train=3,
            num_real_test=2,
            oversample_fake=2,
            oversample_real=3,
        )
    pipeline = IRFusionPipeline(config)
    train_raw, _ = pipeline.build_datasets()
    train_set = pipeline.prepare_training_set(train_raw)
    return config, len(train_raw.channels), train_set


def _time_one_arm(config, in_channels: int, train_set, train_cfg, repeats: int):
    """Fresh model/trainer, two untimed warm epochs, *repeats* timed
    epochs; returns (per-epoch seconds, final loss).

    Two warm epochs, not one: the first large-temporary epochs also pay
    the allocator's mmap-threshold adaptation, which a single warm epoch
    does not fully absorb.
    """
    model = create_model(
        config.model_name,
        in_channels=in_channels,
        base_channels=config.base_channels,
        depth=config.depth,
    )
    trainer = Trainer(model, preferred_loss(config.model_name), train_cfg)
    rng = np.random.default_rng(0)
    trainer._run_epoch(train_set, rng)  # warm: arenas, caches
    trainer._run_epoch(train_set, rng)  # warm: allocator steady state
    seconds = []
    loss = float("nan")
    for _ in range(repeats):
        start = time.perf_counter()
        loss = trainer._run_epoch(train_set, rng)
        seconds.append(time.perf_counter() - start)
    return seconds, float(loss)


def _run_arm_isolated(config, in_channels, train_set, train_cfg, repeats):
    """Run one arm, in a forked child where the platform allows.

    Forking gives every measurement the identical starting state of the
    parent (features extracted, no training yet): arms timed back to
    back in one process inherit the allocator churn of their
    predecessors and measure several percent slower for it.
    """
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return _time_one_arm(config, in_channels, train_set, train_cfg, repeats)
    queue = ctx.SimpleQueue()

    def _child():
        queue.put(
            _time_one_arm(config, in_channels, train_set, train_cfg, repeats)
        )

    process = ctx.Process(target=_child)
    process.start()
    result = queue.get()
    process.join()
    return result


def time_arms(
    config, in_channels: int, train_set, arm_cfgs: dict, repeats: int,
    cycles: int = 2,
) -> dict:
    """Time every arm over *cycles* isolated rounds; best-of-all wins.

    A single contiguous run of one arm is exposed to minutes-long
    slowdowns outside the benchmark's control (shared-host neighbours,
    background daemons): whichever arm is running during the slowdown
    gets blamed for it and the ratios skew.  Cycling through the arms
    more than once decorrelates arm identity from wall-clock time, and
    the per-arm best across all cycles picks each arm's quiet
    measurement.
    """
    seconds = {name: [] for name in arm_cfgs}
    losses = {}
    for _ in range(max(cycles, 1)):
        for name, train_cfg in arm_cfgs.items():
            cycle_seconds, loss = _run_arm_isolated(
                config, in_channels, train_set, train_cfg, repeats
            )
            seconds[name].extend(cycle_seconds)
            losses[name] = loss
    arms = {}
    for name, train_cfg in arm_cfgs.items():
        best = float(np.min(seconds[name]))
        arms[name] = {
            "seconds_per_epoch_best": best,
            "seconds_per_epoch_mean": float(np.mean(seconds[name])),
            "samples_per_second_best": len(train_set) / best,
            "final_loss": losses[name],
            "jobs": train_cfg.jobs,
            "precision": train_cfg.precision,
            "grad_shards": train_cfg.grad_shards,
        }
    return arms


def run_bench(tiny: bool, repeats: int, cycles: int = 2) -> dict:
    config, in_channels, train_set = build_training_set(tiny)
    batch_size = 8 if tiny else 16

    def cfg(**kwargs) -> TrainConfig:
        return TrainConfig(batch_size=batch_size, lr=config.train.lr, **kwargs)

    arms = time_arms(
        config,
        in_channels,
        train_set,
        {
            "serial_fp64": cfg(),
            "serial_mixed": cfg(precision="mixed"),
            "parallel_fp64": cfg(jobs=4),
            "parallel_mixed": cfg(jobs=4, precision="mixed"),
        },
        repeats,
        cycles=cycles,
    )
    base = arms["serial_fp64"]["seconds_per_epoch_best"]
    calibration = calibration_seconds()
    serial_loss = arms["serial_fp64"]["final_loss"]
    sharded_loss = arms["parallel_fp64"]["final_loss"]
    mixed_loss = arms["parallel_mixed"]["final_loss"]
    precision_rel = abs(mixed_loss - sharded_loss) / max(abs(sharded_loss), 1e-12)
    sharding_rel = abs(sharded_loss - serial_loss) / max(abs(serial_loss), 1e-12)
    return {
        "bench": "train_throughput",
        "tiny": tiny,
        "repeats": repeats,
        "cycles": cycles,
        "pixels": config.pixels,
        "num_samples": len(train_set),
        "batch_size": batch_size,
        "cpu_count": os.cpu_count(),
        "calibration_seconds": calibration,
        "arms": arms,
        "speedups_vs_serial_fp64": {
            name: base / arm["seconds_per_epoch_best"]
            for name, arm in arms.items()
            if name != "serial_fp64"
        },
        "target_speedup": TARGET_SPEEDUP,
        "loss_agreement": {
            "serial_fp64_final_loss": serial_loss,
            "parallel_fp64_final_loss": sharded_loss,
            "parallel_mixed_final_loss": mixed_loss,
            # same trajectory, fp32 kernels vs fp64 kernels
            "precision_rel_diff": precision_rel,
            "precision_tolerance": PRECISION_LOSS_TOLERANCE,
            # different (sharded ghost-BN) trajectory vs the classic loop
            "sharding_rel_diff": sharding_rel,
            "sharding_tolerance": SHARDING_LOSS_TOLERANCE,
            "passed": bool(
                precision_rel <= PRECISION_LOSS_TOLERANCE
                and sharding_rel <= SHARDING_LOSS_TOLERANCE
            ),
        },
        # best-of-repeats over the machine yardstick: the noise-robust
        # number the CI regression gate compares across runners.
        "parallel_mixed_calibrated": (
            arms["parallel_mixed"]["seconds_per_epoch_best"] / calibration
        ),
    }


def check_regression(results: dict, baseline_path: Path) -> int:
    """CI gate: loss agreement + <=25% calibrated throughput regression."""
    if not results["loss_agreement"]["passed"]:
        print(f"FAIL: loss agreement broke ({results['loss_agreement']})")
        return 1
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("tiny") != results["tiny"]:
        print("FAIL: baseline and current run use different scales "
              f"(baseline tiny={baseline.get('tiny')}, "
              f"current tiny={results['tiny']}); compare like for like")
        return 1
    base = baseline["parallel_mixed_calibrated"]
    now = results["parallel_mixed_calibrated"]
    ratio = now / base
    print(f"calibrated parallel_mixed epoch: baseline={base:.3f} "
          f"now={now:.3f} ratio={ratio:.3f} (limit {REGRESSION_LIMIT})")
    if ratio > REGRESSION_LIMIT:
        print(f"FAIL: training throughput regressed {ratio:.2f}x vs baseline")
        return 1
    if not results["tiny"]:
        headline = results["speedups_vs_serial_fp64"]["parallel_mixed"]
        if headline < TARGET_SPEEDUP:
            print(f"FAIL: parallel_mixed speedup {headline:.2f}x is below "
                  f"the {TARGET_SPEEDUP}x target")
            return 1
    print("regression gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="reduced scale for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed epochs per arm and cycle "
                             "(after two warm epochs)")
    parser.add_argument("--cycles", type=int, default=2,
                        help="isolated measurement rounds per arm; the "
                             "headline is the best epoch across all")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_pr3.json")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a committed BENCH_pr3 baseline "
                             f"and fail on >{(REGRESSION_LIMIT - 1):.0%} "
                             "calibrated regression or loss disagreement")
    args = parser.parse_args(argv)

    results = run_bench(
        tiny=args.tiny, repeats=args.repeats, cycles=args.cycles
    )
    args.out.write_text(json.dumps(results, indent=2) + "\n")

    print(f"wrote {args.out}")
    for name, arm in results["arms"].items():
        print(f"{name:14s} {arm['seconds_per_epoch_best']:.3f}s/epoch "
              f"({arm['samples_per_second_best']:.0f} samples/s)")
    for name, speedup in results["speedups_vs_serial_fp64"].items():
        print(f"speedup[{name}] = {speedup:.2f}x")
    print(f"loss agreement: {results['loss_agreement']}")

    if args.check is not None:
        return check_regression(results, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
