"""Fig. 6 — qualitative IR-drop map comparison.

Renders golden vs MAUnet vs IR-Fusion maps for one held-out real design as
character art (no plotting stack offline) and saves the raw arrays so they
can be replotted elsewhere.  Expected shape: the IR-Fusion map tracks the
golden hotspot layout more closely (lower per-pixel error) than MAUnet's.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import ARTIFACTS, bench_config, save_artifact
from repro.core.pipeline import IRFusionPipeline
from repro.eval.report import ascii_map, side_by_side
from repro.train.metrics import mae


def _run_fig6():
    config = bench_config()
    fusion = IRFusionPipeline(config)
    fusion.train()

    from dataclasses import replace

    from repro.features.fusion import FeatureConfig

    maunet_config = config.with_(
        model_name="maunet",
        features=FeatureConfig(use_numerical=False, hierarchical=False),
        train=replace(config.train, use_curriculum=False),
    )
    maunet = IRFusionPipeline(maunet_config)
    maunet.train()

    _, test_set = fusion.build_datasets()
    _, maunet_test = maunet.build_datasets()
    sample_fusion = test_set[0]
    sample_maunet = maunet_test[0]
    golden = sample_fusion.label
    predicted_fusion = fusion.predict_sample(sample_fusion)
    predicted_maunet = maunet.predict_sample(sample_maunet)
    return golden, predicted_maunet, predicted_fusion


def test_fig6_visualization(benchmark, capsys):
    golden, map_maunet, map_fusion = benchmark.pedantic(
        _run_fig6, rounds=1, iterations=1
    )
    art = side_by_side(
        [ascii_map(golden, 32), ascii_map(map_maunet, 32), ascii_map(map_fusion, 32)],
        ["(a) Golden", "(b) MAUnet", "(c) IR-Fusion (Ours)"],
    )
    err_maunet = mae(map_maunet, golden)
    err_fusion = mae(map_fusion, golden)
    caption = (
        f"\nMAE vs golden: MAUnet={err_maunet * 1e4:.2f}e-4 V, "
        f"IR-Fusion={err_fusion * 1e4:.2f}e-4 V"
    )
    save_artifact("fig6_visualization.txt", art + caption)
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        ARTIFACTS / "fig6_maps.npz",
        golden=golden,
        maunet=map_maunet,
        ir_fusion=map_fusion,
    )
    with capsys.disabled():
        print("\n" + art + caption)
    # Paper shape: the fusion map is closer to golden than MAUnet's.
    assert err_fusion < err_maunet
