"""Tests for the random-walk PG solver."""

import numpy as np
import pytest

from repro.grid.netlist import PowerGrid
from repro.mna.stamper import build_reduced_system
from repro.solvers.direct import DirectSolver
from repro.solvers.random_walk import RandomWalkOptions, RandomWalkSolver
from repro.spice.parser import parse_spice


@pytest.fixture(scope="module")
def small_grid():
    """A 3-node chain with one pad and one load — exactly solvable."""
    return PowerGrid.from_netlist(
        parse_spice(
            "R1 a b 1\nR2 b c 1\nI1 c 0 0.01\nV1 a 0 1.0\n"
        )
    )


class TestRandomWalkSolver:
    def test_pad_node_exact(self, small_grid):
        solver = RandomWalkSolver(RandomWalkOptions(walks_per_node=10))
        assert solver.estimate_node(small_grid, "a") == 1.0

    def test_chain_matches_direct_within_tolerance(self, small_grid):
        # exact: v_b = 1 - 0.01, v_c = 1 - 0.02
        solver = RandomWalkSolver(RandomWalkOptions(walks_per_node=3000, seed=1))
        estimate_b = solver.estimate_node(small_grid, "b")
        estimate_c = solver.estimate_node(small_grid, "c")
        assert estimate_b == pytest.approx(0.99, abs=2e-3)
        assert estimate_c == pytest.approx(0.98, abs=2e-3)

    def test_full_grid_matches_direct(self, tiny_grid):
        solver = RandomWalkSolver(RandomWalkOptions(walks_per_node=1500, seed=3))
        estimates = solver.solve_grid(tiny_grid)
        system = build_reduced_system(tiny_grid)
        golden = system.scatter(DirectSolver().solve(system.matrix, system.rhs).x)
        assert np.abs(estimates - golden).max() < 5e-3

    def test_deterministic_under_seed(self, tiny_grid):
        a = RandomWalkSolver(RandomWalkOptions(walks_per_node=50, seed=9))
        b = RandomWalkSolver(RandomWalkOptions(walks_per_node=50, seed=9))
        assert np.array_equal(a.solve_grid(tiny_grid), b.solve_grid(tiny_grid))

    def test_unsolvable_grid_rejected(self):
        grid = PowerGrid.from_netlist(parse_spice("R1 a b 1\nI1 b 0 0.1\n"))
        with pytest.raises(ValueError):
            RandomWalkSolver().solve_grid(grid)

    def test_option_validation(self):
        with pytest.raises(ValueError):
            RandomWalkOptions(walks_per_node=0)
        with pytest.raises(ValueError):
            RandomWalkOptions(max_steps=0)
