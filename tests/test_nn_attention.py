"""Gradient and behaviour tests for attention blocks."""

import numpy as np
import pytest

from repro.nn.attention import CBAM, AttentionGate, ChannelAttention, SpatialAttention
from tests.helpers import check_input_gradient, numerical_input_gradient


@pytest.fixture()
def x(rng):
    return rng.standard_normal((2, 4, 8, 8))


class TestChannelAttention:
    def test_input_grad(self, x, rng):
        check_input_gradient(ChannelAttention(4, reduction=2, rng=rng), x, rng)

    def test_output_shape_preserved(self, x, rng):
        out = ChannelAttention(4, rng=rng)(x)
        assert out.shape == x.shape

    def test_gate_bounded(self, x, rng):
        attention = ChannelAttention(4, rng=rng)
        out = attention(x)
        scale = attention._cache["scale"]
        assert (scale > 0).all() and (scale < 1).all()

    def test_shared_mlp_parameters(self, rng):
        attention = ChannelAttention(4, reduction=2, rng=rng)
        names = [name for name, _ in attention.named_parameters()]
        assert sorted(names) == ["b1", "b2", "w1", "w2"]


class TestSpatialAttention:
    def test_input_grad(self, x, rng):
        check_input_gradient(SpatialAttention(kernel=3, rng=rng), x, rng)

    def test_output_shape_preserved(self, x, rng):
        assert SpatialAttention(rng=rng)(x).shape == x.shape


class TestCBAM:
    def test_input_grad(self, x, rng):
        check_input_gradient(CBAM(4, reduction=2, spatial_kernel=3, rng=rng), x, rng)

    def test_output_shape_preserved(self, x, rng):
        assert CBAM(4, rng=rng)(x).shape == x.shape

    def test_equation6_composition(self, x, rng):
        """CBAM(m) equals Ms applied to Mc applied to m (Equation 6)."""
        cbam = CBAM(4, reduction=2, rng=rng)
        out = cbam(x)
        stage1 = cbam.channel(x)
        stage2 = cbam.spatial(stage1)
        assert np.allclose(out, stage2)


class TestAttentionGate:
    def test_gradients_both_inputs(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        g = rng.standard_normal((2, 5, 8, 8))
        gate = AttentionGate(3, 5, rng=rng)
        out = gate(x, g)
        grad_out = rng.standard_normal(out.shape)
        gate.zero_grad()
        grad_x, grad_g = gate.backward(grad_out)

        num_x = numerical_input_gradient(lambda v: gate(v, g), x, grad_out)
        assert np.abs(grad_x - num_x).max() < 1e-5
        num_g = numerical_input_gradient(lambda v: gate(x, v), g, grad_out)
        assert np.abs(grad_g - num_g).max() < 1e-5

    def test_gate_is_multiplicative_mask(self, rng):
        x = rng.standard_normal((1, 3, 8, 8))
        g = rng.standard_normal((1, 5, 8, 8))
        gate = AttentionGate(3, 5, rng=rng)
        out = gate(x, g)
        mask = gate._cache["gate"]
        assert np.allclose(out, x * mask)
        assert (mask > 0).all() and (mask < 1).all()

    def test_spatial_mismatch_rejected(self, rng):
        gate = AttentionGate(3, 5, rng=rng)
        with pytest.raises(ValueError):
            gate(
                rng.standard_normal((1, 3, 8, 8)),
                rng.standard_normal((1, 5, 4, 4)),
            )
