"""Tests for module summaries."""

from repro.models import IRFusionNet
from repro.nn.containers import Sequential
from repro.nn.layers import Conv2d, ReLU
from repro.nn.summary import parameter_table, summarize


def test_summarize_contains_tree(rng):
    model = Sequential(Conv2d(2, 3, 3, rng=rng), ReLU())
    text = summarize(model, name="net")
    assert "net: Sequential" in text
    assert "Conv2d" in text
    assert "params:" in text


def test_summarize_truncates():
    model = IRFusionNet(in_channels=4, base_channels=4, depth=2)
    text = summarize(model, max_lines=10)
    assert "more modules" in text
    assert len(text.splitlines()) == 11


def test_parameter_table_totals(rng):
    model = Sequential(Conv2d(2, 3, 3, bias=True, rng=rng))
    table = parameter_table(model)
    assert "modules.0.weight" in table
    expected_total = 2 * 3 * 9 + 3
    assert f"{expected_total:,}" in table


def test_full_model_summary_runs():
    model = IRFusionNet(in_channels=10, base_channels=6, depth=3)
    text = summarize(model, max_lines=500)
    assert "IRFusionNet" in text
    assert "CBAM" in text
