"""Tests for the observability layer: spans, metrics, export, fork."""

import json

import pytest

from repro.core.batch import parallel_map
from repro.obs import (
    Span,
    Tracer,
    counter_add,
    counters_delta,
    current_tracer,
    gauge_set,
    merge_metrics,
    metrics_snapshot,
    monotonic,
    reset_metrics,
    span,
    summary_lines,
    trace,
    validate_trace_file,
    validate_trace_lines,
    write_trace,
)
from repro.obs.export import TRACE_VERSION, trace_lines


def _traced_item(x):
    with span("work", item=x):
        counter_add("obs_test.items")
    return x * 2


class TestSpans:
    def test_nesting_follows_dynamic_extent(self):
        with trace("run") as tracer:
            with span("outer"):
                with span("inner_a"):
                    pass
                with span("inner_b"):
                    pass
            with span("sibling"):
                pass
        root = tracer.root
        assert [c.name for c in root.children] == ["outer", "sibling"]
        outer = root.children[0]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]

    def test_durations_are_monotonic_and_closed(self):
        with trace("run") as tracer:
            with span("stage") as stage:
                pass
        assert tracer.root.end is not None
        assert stage.end is not None
        assert 0.0 <= stage.duration <= tracer.root.duration

    def test_implicit_trace_when_nothing_active(self):
        assert current_tracer() is None
        with span("lonely", detail=1) as lonely:
            assert current_tracer() is not None
            with span("child"):
                pass
        assert current_tracer() is None
        assert lonely.name == "lonely"
        assert [c.name for c in lonely.children] == ["child"]

    def test_attrs_recorded(self):
        with span("stage", epoch=3, tag="x") as stage:
            pass
        assert stage.attrs == {"epoch": 3, "tag": "x"}

    def test_find_and_total(self):
        with trace("run") as tracer:
            with span("repeat"):
                pass
            with span("repeat"):
                pass
        root = tracer.root
        assert root.find("repeat") is root.children[0]
        assert root.find("absent") is None
        total = root.total("repeat")
        assert total == pytest.approx(
            sum(c.duration for c in root.children)
        )

    def test_to_dict_round_trip(self):
        with trace("run", kind="test") as tracer:
            with span("stage", index=1):
                pass
        payload = tracer.root.to_dict()
        restored = Span.from_dict(payload)
        assert restored.name == "run"
        assert restored.attrs == {"kind": "test"}
        assert [c.name for c in restored.children] == ["stage"]
        assert restored.duration == pytest.approx(
            tracer.root.duration, rel=1e-9
        )

    def test_nested_tracers_restore_previous(self):
        with trace("outer") as outer:
            with trace("inner") as inner:
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is None

    def test_monotonic_advances(self):
        first = monotonic()
        second = monotonic()
        assert second >= first

    def test_tracer_finish_closes_open_spans(self):
        tracer = Tracer("run")
        with tracer.span("open_stage"):
            root = tracer.finish()
        assert root.end is not None
        assert root.children[0].end is not None


class TestMetrics:
    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        reset_metrics()
        yield
        reset_metrics()

    def test_counter_accumulates(self):
        counter_add("obs_test.hits")
        counter_add("obs_test.hits", 2)
        assert metrics_snapshot()["counters"]["obs_test.hits"] == 3

    def test_gauge_last_write_wins(self):
        gauge_set("obs_test.level", 1.5)
        gauge_set("obs_test.level", 2.5)
        assert metrics_snapshot()["gauges"]["obs_test.level"] == 2.5

    def test_delta_only_reports_movement(self):
        counter_add("obs_test.stable")
        before = metrics_snapshot()
        counter_add("obs_test.moved", 4)
        delta = counters_delta(before)
        assert delta["counters"] == {"obs_test.moved": 4}

    def test_merge_folds_delta(self):
        counter_add("obs_test.base", 1)
        merge_metrics({"counters": {"obs_test.base": 2}, "gauges": {"g": 7}})
        snapshot = metrics_snapshot()
        assert snapshot["counters"]["obs_test.base"] == 3
        assert snapshot["gauges"]["g"] == 7.0


class TestForkRoundTrip:
    def test_worker_spans_and_counters_reach_parent(self):
        reset_metrics()
        before = metrics_snapshot()
        with trace("batch_test") as tracer:
            outcomes, degraded = parallel_map(
                _traced_item, [1, 2, 3, 4], jobs=2
            )
        assert [value for value, _ in outcomes] == [2, 4, 6, 8]
        root = tracer.root
        works = [s for s in root.iter_spans() if s.name == "work"]
        assert sorted(s.attrs["item"] for s in works) == [1, 2, 3, 4]
        if not degraded:
            # Each worker item ships its own span tree, grafted under the
            # parent's root as an ``item`` wrapper.
            items = [s for s in root.iter_spans() if s.name == "item"]
            assert len(items) == 4
        delta = counters_delta(before)
        assert delta["counters"]["obs_test.items"] == 4
        reset_metrics()

    def test_untraced_batch_ships_no_trees(self):
        assert current_tracer() is None
        outcomes, _ = parallel_map(_traced_item, [5, 6], jobs=2)
        assert [value for value, _ in outcomes] == [10, 12]


class TestExport:
    def _sample_root(self) -> Span:
        with trace("run") as tracer:
            with span("stage", index=0):
                with span("substage"):
                    pass
        return tracer.root

    def test_lines_follow_schema(self):
        lines = trace_lines(
            self._sample_root(),
            metrics={"counters": {"c": 1}, "gauges": {}},
        )
        header = json.loads(lines[0])
        assert header == {
            "kind": "header",
            "version": TRACE_VERSION,
            "root": "run",
        }
        spans = [json.loads(line) for line in lines[1:-1]]
        assert [s["name"] for s in spans] == ["run", "stage", "substage"]
        assert spans[0]["parent"] is None and spans[0]["id"] == 0
        assert spans[1]["parent"] == 0 and spans[2]["parent"] == 1
        assert json.loads(lines[-1])["kind"] == "metrics"

    def test_validate_accepts_own_output(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        write_trace(
            path, self._sample_root(), metrics={"counters": {}, "gauges": {}}
        )
        assert validate_trace_file(path) == []

    def test_validate_flags_corruption(self):
        lines = trace_lines(self._sample_root())
        assert validate_trace_lines(["not json"])  # unparsable
        assert validate_trace_lines([])  # empty
        assert validate_trace_lines(lines[1:])  # missing header
        # Orphan parent: child precedes its parent definition.
        reordered = [lines[0], lines[2], lines[1], lines[3]]
        assert any(
            "parent" in err for err in validate_trace_lines(reordered)
        )
        broken = json.loads(lines[1])
        broken["duration"] = -1.0
        assert any(
            "negative" in err
            for err in validate_trace_lines([lines[0], json.dumps(broken)])
        )

    def test_validator_cli(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        path = tmp_path / "ok.trace.jsonl"
        write_trace(path, self._sample_root())
        # schema-valid, but "stage"/"substage" are ad-hoc names: the
        # registry cross-check rejects them unless opted out
        assert main(["--validate", str(path), "--no-registry"]) == 0
        assert main(["--validate", str(path)]) == 1
        err = capsys.readouterr().err
        assert "not in the repro.obs registry" in err
        bad = tmp_path / "bad.trace.jsonl"
        bad.write_text('{"kind": "span"}\n')
        assert main(["--validate", str(bad)]) == 1

    def test_summary_tree_mentions_every_stage(self):
        lines = summary_lines(
            self._sample_root(), metrics={"counters": {"pcg.iterations": 12}}
        )
        text = "\n".join(lines)
        assert "run" in text and "stage" in text and "substage" in text
        assert "pcg.iterations" in text
