"""Degenerate-input regressions for the feature/smoother division guards.

Zero currents, zero resistances and zero sheet resistances must never
turn into NaN/Inf in a feature channel or a smoother sweep.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.features.current import layer_current_maps, load_current_map
from repro.features.distance import effective_distance_map
from repro.features.resistance import resistance_map
from repro.grid.geometry import GridGeometry, LayerInfo
from repro.grid.netlist import PowerGrid
from repro.solvers.smoothers import jacobi, sor
from repro.spice.parser import parse_spice

ZERO_CURRENT_DECK = """* all loads draw zero current
R1 n1_m1_0_0 n1_m1_1000_0 1.0
R2 n1_m1_0_0 n1_m1_0_1000 1.0
I1 n1_m1_1000_0 0 0.0
I2 n1_m1_0_1000 0 0.0
V1 n1_m1_0_0 0 1.0
.end
"""

ZERO_RESISTANCE_DECK = """* near-shorted wires (0-ohm straps are rejected upstream)
R1 n1_m1_0_0 n1_m1_1000_0 1e-12
R2 n1_m1_0_0 n1_m1_0_1000 1e-12
I1 n1_m1_1000_0 0 0.01
V1 n1_m1_0_0 0 1.0
.end
"""


def _geometry(sheet_resistance: float) -> GridGeometry:
    layers = tuple(
        LayerInfo(i, 1000 * i, "h" if i % 2 else "v",
                  sheet_resistance=sheet_resistance)
        for i in (1, 2)
    )
    return GridGeometry(2000, 2000, 1000, 1000, layers)


def _grid(deck: str) -> PowerGrid:
    return PowerGrid.from_netlist(parse_spice(deck))


def test_zero_current_loads_give_finite_maps():
    grid = _grid(ZERO_CURRENT_DECK)
    geometry = _geometry(1.0)
    assert np.isfinite(load_current_map(geometry, grid)).all()
    for image in layer_current_maps(geometry, grid).values():
        assert np.isfinite(image).all()
    assert np.isfinite(effective_distance_map(geometry, grid)).all()


def test_zero_resistance_wires_give_finite_maps():
    grid = _grid(ZERO_RESISTANCE_DECK)
    geometry = _geometry(1.0)
    assert np.isfinite(resistance_map(geometry, grid)).all()
    assert np.isfinite(effective_distance_map(geometry, grid)).all()


def test_zero_sheet_resistance_stack_gives_finite_shares():
    grid = _grid(ZERO_CURRENT_DECK)
    geometry = _geometry(0.0)
    maps = layer_current_maps(geometry, grid)
    for image in maps.values():
        assert np.isfinite(image).all()


def test_jacobi_rejects_zero_diagonal():
    matrix = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
    with pytest.raises(ValueError, match="diagonal"):
        jacobi(matrix, np.ones(2), np.zeros(2))


def test_jacobi_still_converges_on_spd_system():
    matrix = sp.csr_matrix(np.array([[4.0, 1.0], [1.0, 3.0]]))
    rhs = np.array([1.0, 2.0])
    x = jacobi(matrix, rhs, np.zeros(2), sweeps=200)
    assert np.allclose(matrix @ x, rhs, atol=1e-8)


def test_sor_still_converges_on_spd_system():
    matrix = sp.csr_matrix(np.array([[4.0, 1.0], [1.0, 3.0]]))
    rhs = np.array([1.0, 2.0])
    x = sor(matrix, rhs, np.zeros(2), sweeps=100, omega=1.2)
    assert np.allclose(matrix @ x, rhs, atol=1e-8)
