"""Unit tests for the aggregation AMG hierarchy."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.mna.stamper import build_reduced_system
from repro.solvers.amg import (
    AMGOptions,
    aggregation_to_prolongation,
    build_hierarchy,
    coarsen_once,
    pairwise_aggregate,
)


def laplacian_2d(n: int) -> sp.csr_matrix:
    """5-point Laplacian on an n x n grid with Dirichlet boundary."""
    eye = sp.identity(n)
    main = 2.0 * np.ones(n)
    off = -np.ones(n - 1)
    one_d = sp.diags([off, main, off], [-1, 0, 1])
    return sp.csr_matrix(sp.kron(eye, one_d) + sp.kron(one_d, eye))


class TestPairwiseAggregate:
    def test_covers_all_nodes(self):
        matrix = laplacian_2d(8)
        agg = pairwise_aggregate(matrix, 0.25)
        assert agg.min() == 0
        assert (agg >= 0).all()

    def test_ids_dense(self):
        matrix = laplacian_2d(8)
        agg = pairwise_aggregate(matrix, 0.25)
        assert set(agg) == set(range(agg.max() + 1))

    def test_aggregates_at_most_pairs(self):
        matrix = laplacian_2d(8)
        agg = pairwise_aggregate(matrix, 0.25)
        counts = np.bincount(agg)
        assert counts.max() <= 2

    def test_coarsens_roughly_by_half(self):
        matrix = laplacian_2d(12)
        agg = pairwise_aggregate(matrix, 0.25)
        ratio = (agg.max() + 1) / matrix.shape[0]
        assert 0.5 <= ratio <= 0.7

    def test_diagonal_matrix_all_singletons(self):
        matrix = sp.identity(10, format="csr")
        agg = pairwise_aggregate(matrix, 0.25)
        assert agg.max() + 1 == 10


class TestProlongation:
    def test_piecewise_constant(self):
        agg = np.array([0, 0, 1, 2, 1])
        p = aggregation_to_prolongation(agg)
        assert p.shape == (5, 3)
        assert np.array_equal(p.toarray().sum(axis=1), np.ones(5))

    def test_galerkin_preserves_symmetry(self):
        matrix = laplacian_2d(8)
        p, coarse = coarsen_once(matrix, AMGOptions())
        dense = coarse.toarray()
        assert np.allclose(dense, dense.T)

    def test_galerkin_preserves_positive_definiteness(self):
        matrix = laplacian_2d(8)
        _, coarse = coarsen_once(matrix, AMGOptions())
        assert np.linalg.eigvalsh(coarse.toarray()).min() > 0

    def test_double_pairwise_coarsens_by_about_four(self):
        matrix = laplacian_2d(16)
        _, coarse = coarsen_once(matrix, AMGOptions(passes_per_level=2))
        ratio = matrix.shape[0] / coarse.shape[0]
        assert 3.0 <= ratio <= 4.5


class TestHierarchy:
    def test_levels_shrink(self):
        hierarchy = build_hierarchy(laplacian_2d(16), AMGOptions(max_coarse_size=20))
        sizes = [level.size for level in hierarchy.levels]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] <= 20 or hierarchy.num_levels == AMGOptions().max_levels

    def test_coarse_solve_exact(self):
        hierarchy = build_hierarchy(laplacian_2d(8), AMGOptions(max_coarse_size=16))
        coarsest = hierarchy.levels[-1].matrix
        rhs = np.arange(coarsest.shape[0], dtype=float)
        x = hierarchy.coarse_solve(rhs)
        assert np.allclose(coarsest @ x, rhs, atol=1e-10)

    def test_operator_complexity_reasonable(self):
        hierarchy = build_hierarchy(laplacian_2d(24), AMGOptions())
        assert 1.0 <= hierarchy.operator_complexity() < 2.0

    def test_grid_complexity_reasonable(self):
        hierarchy = build_hierarchy(laplacian_2d(24), AMGOptions())
        assert 1.0 <= hierarchy.grid_complexity() < 1.7

    def test_on_real_pg_matrix(self, fake_design):
        system = build_reduced_system(fake_design.grid)
        hierarchy = build_hierarchy(system.matrix, AMGOptions(max_coarse_size=40))
        assert hierarchy.num_levels >= 2
        assert hierarchy.levels[-1].size <= max(
            40, hierarchy.levels[0].size
        )

    def test_prolongation_chain_shapes(self):
        hierarchy = build_hierarchy(laplacian_2d(16), AMGOptions())
        for fine, coarse in zip(hierarchy.levels, hierarchy.levels[1:]):
            assert fine.prolongation is not None
            assert fine.prolongation.shape == (fine.size, coarse.size)
        assert hierarchy.levels[-1].prolongation is None

    def test_max_levels_respected(self):
        hierarchy = build_hierarchy(
            laplacian_2d(24), AMGOptions(max_levels=2, max_coarse_size=4)
        )
        assert hierarchy.num_levels <= 2


class TestAMGOptions:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_levels": 0},
            {"max_coarse_size": 0},
            {"strength_threshold": 1.5},
            {"passes_per_level": 0},
        ],
    )
    def test_invalid_options(self, kwargs):
        with pytest.raises(ValueError):
            AMGOptions(**kwargs)


class TestSmoothedAggregation:
    def test_smoothed_hierarchy_preserves_spd(self):
        matrix = laplacian_2d(10)
        hierarchy = build_hierarchy(
            matrix, AMGOptions(smooth_prolongation=True, max_coarse_size=16)
        )
        for level in hierarchy.levels:
            dense = level.matrix.toarray()
            assert np.allclose(dense, dense.T, atol=1e-12)
            assert np.linalg.eigvalsh(dense).min() > -1e-10

    def test_smoothed_converges_at_least_as_fast(self, fake_design):
        """SA should not be worse than plain aggregation per iteration."""
        from repro.solvers.amg_pcg import AMGPCGSolver
        from repro.solvers.base import SolverOptions

        system = build_reduced_system(fake_design.grid)
        options = SolverOptions(tol=1e-10, max_iterations=500)
        plain = AMGPCGSolver(options, AMGOptions()).solve(
            system.matrix, system.rhs
        )
        smoothed = AMGPCGSolver(
            options, AMGOptions(smooth_prolongation=True)
        ).solve(system.matrix, system.rhs)
        assert smoothed.converged
        assert smoothed.iterations <= plain.iterations + 2

    def test_smoothed_operators_denser(self):
        matrix = laplacian_2d(12)
        _, plain = coarsen_once(matrix, AMGOptions())
        _, smoothed = coarsen_once(
            matrix, AMGOptions(smooth_prolongation=True)
        )
        assert smoothed.nnz >= plain.nnz

    def test_smoothing_omega_validation(self):
        with pytest.raises(ValueError):
            AMGOptions(smoothing_omega=0.0)
        with pytest.raises(ValueError):
            AMGOptions(smoothing_omega=2.0)
