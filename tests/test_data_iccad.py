"""Unit tests for the ICCAD-2023-style design directory format."""

import numpy as np
import pytest

from repro.data.iccad import load_iccad_design, save_iccad_design


def test_roundtrip(tmp_path, fake_design, rng):
    images = {
        "current": rng.random((16, 16)),
        "eff_dist": rng.random((16, 16)),
        "pdn_density": rng.random((16, 16)),
        "ir_drop": rng.random((16, 16)),
    }
    save_iccad_design(tmp_path / "d1", fake_design.netlist, images)
    netlist, loaded = load_iccad_design(tmp_path / "d1")
    assert len(netlist.resistors) == len(fake_design.netlist.resistors)
    for key, image in images.items():
        assert np.allclose(loaded[key], image)


def test_partial_images(tmp_path, fake_design, rng):
    save_iccad_design(
        tmp_path / "d2", fake_design.netlist, {"current": rng.random((8, 8))}
    )
    _, loaded = load_iccad_design(tmp_path / "d2")
    assert set(loaded) == {"current"}


def test_unknown_image_key_rejected(tmp_path, fake_design):
    with pytest.raises(ValueError):
        save_iccad_design(
            tmp_path / "d3", fake_design.netlist, {"bogus": np.zeros((2, 2))}
        )


def test_missing_netlist_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_iccad_design(tmp_path / "nowhere")
