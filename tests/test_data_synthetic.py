"""Unit tests for the synthetic design generator."""

import numpy as np
import pytest

from repro.data.synthetic import (
    DesignSpec,
    generate_benchmark_suite,
    generate_design,
    make_fake_spec,
    make_real_spec,
    synthesize_current_image,
)
from repro.grid.topology import validate_connectivity


class TestDesignSpec:
    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            DesignSpec(name="x", kind="synthetic")

    def test_too_small(self):
        with pytest.raises(ValueError):
            DesignSpec(name="x", pixels=4)

    def test_single_layer_rejected(self):
        with pytest.raises(ValueError):
            DesignSpec(name="x", num_layers=1)

    def test_dropout_bounds(self):
        with pytest.raises(ValueError):
            DesignSpec(name="x", stripe_dropout=0.9)


class TestCurrentImage:
    def test_total_conserved(self):
        spec = make_fake_spec("x", seed=1, pixels=16)
        rng = np.random.default_rng(1)
        image = synthesize_current_image(spec, rng)
        assert image.sum() == pytest.approx(spec.total_current)

    def test_non_negative(self):
        spec = make_real_spec("x", seed=2, pixels=16)
        image = synthesize_current_image(spec, np.random.default_rng(2))
        assert image.min() >= 0.0

    def test_macros_create_contrast(self):
        smooth_spec = make_fake_spec("a", seed=3, pixels=16)
        macro_spec = make_real_spec("b", seed=3, pixels=16)
        smooth = synthesize_current_image(smooth_spec, np.random.default_rng(3))
        rough = synthesize_current_image(macro_spec, np.random.default_rng(3))
        assert rough.max() / rough.mean() > smooth.max() / smooth.mean() * 0.8


class TestGenerateDesign:
    def test_fake_design_properties(self, fake_design):
        assert fake_design.is_fake
        assert fake_design.grid.num_nodes > 100
        assert len(fake_design.grid.pads()) == fake_design.spec.num_pads
        validate_connectivity(fake_design.grid)

    def test_real_design_irregular(self, real_design):
        assert not real_design.is_fake
        validate_connectivity(real_design.grid)

    def test_loads_on_bottom_layer_only(self, fake_design):
        for node in fake_design.grid.loads():
            assert node.layer == 1

    def test_pads_on_top_layer_only(self, fake_design):
        top = max(fake_design.grid.layers_present())
        for pad in fake_design.grid.pads():
            assert pad.layer == top

    def test_total_load_close_to_spec(self, fake_design):
        # every pixel has a bottom-layer tap in the regular fake layout
        assert fake_design.grid.total_load_current() == pytest.approx(
            fake_design.spec.total_current, rel=1e-9
        )

    def test_deterministic_under_seed(self):
        a = generate_design(make_fake_spec("a", seed=9, pixels=16))
        b = generate_design(make_fake_spec("a", seed=9, pixels=16))
        assert a.grid.num_nodes == b.grid.num_nodes
        assert np.allclose(a.current_image, b.current_image)
        assert [w.resistance for w in a.grid.wires] == [
            w.resistance for w in b.grid.wires
        ]

    def test_different_seeds_differ(self):
        a = generate_design(make_fake_spec("a", seed=1, pixels=16))
        b = generate_design(make_fake_spec("a", seed=2, pixels=16))
        assert not np.allclose(a.current_image, b.current_image)

    def test_real_has_resistance_jitter(self, real_design):
        """Parallel segments of equal length should have unequal resistance."""
        resistances = [w.resistance for w in real_design.grid.wires]
        assert len(set(np.round(resistances, 9))) > len(resistances) // 2

    def test_layer_count_respected(self):
        design = generate_design(make_fake_spec("a", seed=1, pixels=16, num_layers=4))
        assert design.grid.layers_present() == [1, 2, 3, 4]


class TestBenchmarkSuite:
    def test_composition(self):
        suite = generate_benchmark_suite(num_fake=2, num_real=1, pixels=16)
        kinds = [d.kind for d in suite]
        assert kinds == ["fake", "fake", "real"]

    def test_unique_names(self):
        suite = generate_benchmark_suite(num_fake=3, num_real=2, pixels=16)
        names = [d.name for d in suite]
        assert len(set(names)) == len(names)

    def test_all_connected(self):
        for design in generate_benchmark_suite(2, 2, pixels=16, seed=3):
            validate_connectivity(design.grid)

    def test_seed_stability(self):
        a = generate_benchmark_suite(1, 1, pixels=16, seed=5)
        b = generate_benchmark_suite(1, 1, pixels=16, seed=5)
        assert np.allclose(a[0].current_image, b[0].current_image)
