"""Tests for branch-current post-processing."""

import numpy as np
import pytest

from repro.grid.netlist import PowerGrid
from repro.mna.post import branch_currents, kcl_residuals, pad_currents
from repro.solvers.powerrush import PowerRushSimulator
from repro.spice.parser import parse_spice


@pytest.fixture(scope="module")
def solved(fake_design):
    report = PowerRushSimulator(tol=1e-12).simulate_grid(fake_design.grid)
    return fake_design.grid, report.voltages


class TestBranchCurrents:
    def test_hand_computed_chain(self):
        grid = PowerGrid.from_netlist(
            parse_spice("R1 a b 2\nI1 b 0 0.5\nV1 a 0 1\n")
        )
        report = PowerRushSimulator(tol=1e-12).simulate_grid(grid)
        currents = branch_currents(grid, report.voltages)
        # 0.5 A flows a -> b through the single wire
        assert currents[0] == pytest.approx(0.5, rel=1e-9)

    def test_shape_validation(self, fake_design):
        with pytest.raises(ValueError):
            branch_currents(fake_design.grid, np.ones(3))

    def test_kcl_residuals_vanish(self, solved):
        grid, voltages = solved
        residual = kcl_residuals(grid, voltages)
        assert np.abs(residual).max() < 1e-8

    def test_kcl_detects_wrong_solution(self, solved):
        grid, voltages = solved
        residual = kcl_residuals(grid, voltages * 1.01)
        assert np.abs(residual).max() > 1e-6

    def test_pad_currents_sum_to_load(self, solved):
        grid, voltages = solved
        supplied = pad_currents(grid, voltages)
        assert sum(supplied.values()) == pytest.approx(
            grid.total_load_current(), rel=1e-8
        )

    def test_all_pads_supply_current(self, solved):
        """Fake designs have symmetric pads; all of them should source."""
        grid, voltages = solved
        supplied = pad_currents(grid, voltages)
        assert all(value > 0 for value in supplied.values())
