"""Unit tests for the individual feature extractors."""

import numpy as np
import pytest

from repro.features.current import layer_current_maps, load_current_map
from repro.features.density import pdn_density_map
from repro.features.distance import effective_distance_map
from repro.features.numerical import numerical_layer_maps
from repro.features.resistance import (
    resistance_map,
    shortest_path_resistance_map,
    shortest_path_resistances,
)
from repro.solvers.powerrush import PowerRushSimulator


class TestCurrentMaps:
    def test_load_map_conserves_total_current(self, fake_design):
        image = load_current_map(fake_design.geometry, fake_design.grid)
        assert image.sum() == pytest.approx(
            fake_design.grid.total_load_current()
        )

    def test_load_map_non_negative(self, fake_design):
        image = load_current_map(fake_design.geometry, fake_design.grid)
        assert image.min() >= 0.0

    def test_layer_maps_cover_all_layers(self, fake_design):
        maps = layer_current_maps(fake_design.geometry, fake_design.grid)
        assert sorted(maps) == [l.index for l in fake_design.geometry.layers]

    def test_layer_shares_sum_to_load(self, fake_design):
        # box smoothing at the die border loses a little mass (replicated
        # edges), so conservation is approximate
        maps = layer_current_maps(fake_design.geometry, fake_design.grid)
        total = sum(m.sum() for m in maps.values())
        assert total == pytest.approx(
            fake_design.grid.total_load_current(), rel=0.05
        )

    def test_upper_layers_smoother(self, fake_design):
        maps = layer_current_maps(fake_design.geometry, fake_design.grid)
        # smoothing reduces per-pixel variance relative to the layer mean
        cv = {
            layer: np.std(m) / (np.mean(m) + 1e-30)
            for layer, m in maps.items()
        }
        assert cv[3] <= cv[1] + 1e-9


class TestEffectiveDistance:
    def test_zero_at_pad_pixels(self, fake_design):
        image = effective_distance_map(fake_design.geometry, fake_design.grid)
        for row, col in fake_design.pad_pixels:
            assert image[row, col] < 2 * fake_design.geometry.pixel_w_nm

    def test_increases_away_from_single_pad(self):
        from repro.grid.netlist import PowerGrid
        from repro.grid.geometry import GridGeometry, default_layer_stack
        from repro.spice.parser import parse_spice

        grid = PowerGrid.from_netlist(
            parse_spice(
                "R1 n1_m1_0_0 n1_m1_7000_0 1\nV1 n1_m1_0_0 0 1\n"
            )
        )
        geometry = GridGeometry(8000, 8000, 1000, 1000, default_layer_stack(1))
        image = effective_distance_map(geometry, grid)
        assert image[0, 0] < image[0, 7] < image[7, 7]

    def test_no_pads_raises(self, fake_design):
        from repro.grid.netlist import PowerGrid
        from repro.spice.parser import parse_spice

        grid = PowerGrid.from_netlist(parse_spice("R1 n1_m1_0_0 n1_m1_1_1 1\n"))
        with pytest.raises(ValueError):
            effective_distance_map(fake_design.geometry, grid)

    def test_harmonic_combination(self):
        """Two pads give lower effective distance than either alone."""
        from repro.grid.netlist import PowerGrid
        from repro.grid.geometry import GridGeometry, default_layer_stack
        from repro.spice.parser import parse_spice

        geometry = GridGeometry(8000, 8000, 1000, 1000, default_layer_stack(1))
        one = PowerGrid.from_netlist(
            parse_spice("R1 n1_m1_0_0 n1_m1_7000_7000 1\nV1 n1_m1_0_0 0 1\n")
        )
        two = PowerGrid.from_netlist(
            parse_spice(
                "R1 n1_m1_0_0 n1_m1_7000_7000 1\n"
                "V1 n1_m1_0_0 0 1\nV2 n1_m1_7000_7000 0 1\n"
            )
        )
        image_one = effective_distance_map(geometry, one)
        image_two = effective_distance_map(geometry, two)
        assert np.all(image_two <= image_one + 1e-9)


class TestDensityAndResistance:
    def test_density_counts_nodes(self, fake_design):
        image = pdn_density_map(fake_design.geometry, fake_design.grid)
        structured = [
            n for n in fake_design.grid.nodes if n.structured is not None
        ]
        assert image.sum() == pytest.approx(len(structured))

    def test_density_per_layer_smaller(self, fake_design):
        all_layers = pdn_density_map(fake_design.geometry, fake_design.grid)
        layer1 = pdn_density_map(fake_design.geometry, fake_design.grid, layer=1)
        assert layer1.sum() < all_layers.sum()

    def test_resistance_map_conserves_total(self, fake_design):
        image = resistance_map(fake_design.geometry, fake_design.grid)
        total = sum(w.resistance for w in fake_design.grid.wires)
        assert image.sum() == pytest.approx(total, rel=1e-9)

    def test_shortest_path_resistances_zero_at_pads(self, fake_design):
        distances = shortest_path_resistances(fake_design.grid)
        for pad in fake_design.grid.pads():
            assert distances[pad.index] == 0.0

    def test_shortest_path_resistances_all_finite(self, fake_design):
        distances = shortest_path_resistances(fake_design.grid)
        assert np.isfinite(distances).all()

    def test_shortest_path_map_shape(self, fake_design):
        image = shortest_path_resistance_map(
            fake_design.geometry, fake_design.grid
        )
        assert image.shape == fake_design.geometry.shape
        assert image.min() >= 0.0


class TestNumericalMaps:
    def test_per_layer_maps(self, fake_design):
        report = PowerRushSimulator(max_iterations=2).simulate_grid(
            fake_design.grid
        )
        maps = numerical_layer_maps(
            fake_design.geometry,
            fake_design.grid,
            report.voltages,
            fake_design.spec.supply_voltage,
        )
        assert sorted(maps) == fake_design.grid.layers_present()
        for image in maps.values():
            assert image.shape == fake_design.geometry.shape

    def test_converged_bottom_map_matches_label(self, fake_design, fake_sample):
        report = PowerRushSimulator(tol=1e-13).simulate_grid(fake_design.grid)
        maps = numerical_layer_maps(
            fake_design.geometry,
            fake_design.grid,
            report.voltages,
            fake_design.spec.supply_voltage,
            layers=[1],
        )
        assert np.allclose(maps[1], fake_sample.label, atol=1e-8)

    def test_shape_validation(self, fake_design):
        with pytest.raises(ValueError):
            numerical_layer_maps(
                fake_design.geometry, fake_design.grid, np.ones(3), 1.05
            )
