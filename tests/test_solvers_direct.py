"""Unit tests for the direct (golden) solver."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.mna.stamper import build_reduced_system
from repro.solvers.direct import DirectSolver


class TestDirectSolver:
    def test_exact_on_pg_system(self, fake_design):
        system = build_reduced_system(fake_design.grid)
        result = DirectSolver().solve(system.matrix, system.rhs)
        assert result.converged
        assert system.relative_residual(result.x) < 1e-12

    def test_factor_cached_for_same_matrix(self, fake_design):
        system = build_reduced_system(fake_design.grid)
        solver = DirectSolver()
        solver.solve(system.matrix, system.rhs)
        factor = solver._cached_factor
        solver.solve(system.matrix, system.rhs * 2.0)
        assert solver._cached_factor is factor

    def test_refactors_for_new_matrix(self, fake_design, real_design):
        a = build_reduced_system(fake_design.grid)
        b = build_reduced_system(real_design.grid)
        solver = DirectSolver()
        solver.solve(a.matrix, a.rhs)
        factor = solver._cached_factor
        solver.solve(b.matrix, b.rhs)
        assert solver._cached_factor is not factor

    def test_linear_in_rhs(self, fake_design):
        system = build_reduced_system(fake_design.grid)
        solver = DirectSolver()
        x1 = solver.solve(system.matrix, system.rhs).x
        x2 = solver.solve(system.matrix, 2.0 * system.rhs).x
        assert np.allclose(x2, 2.0 * x1)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DirectSolver().solve(sp.eye(3, format="csr"), np.ones(2))
