"""Gradient and shape tests for Inception blocks."""

import numpy as np
import pytest

from repro.nn.inception import InceptionA, InceptionB, InceptionC, _branch_widths
from tests.helpers import check_input_gradient


@pytest.fixture()
def x(rng):
    return rng.standard_normal((2, 3, 8, 8))


class TestBranchWidths:
    def test_divisible(self):
        assert _branch_widths(8, 4) == [2, 2, 2, 2]

    def test_remainder_to_first(self):
        assert _branch_widths(10, 4) == [4, 2, 2, 2]
        assert sum(_branch_widths(10, 4)) == 10

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            _branch_widths(3, 4)


@pytest.mark.parametrize(
    "block_cls,out_channels",
    [(InceptionA, 8), (InceptionB, 8), (InceptionC, 12)],
)
class TestInceptionBlocks:
    def test_output_shape(self, block_cls, out_channels, x, rng):
        block = block_cls(3, out_channels, rng=rng)
        out = block(x)
        assert out.shape == (2, out_channels, 8, 8)

    def test_input_gradient(self, block_cls, out_channels, x, rng):
        check_input_gradient(block_cls(3, out_channels, rng=rng), x, rng)

    def test_spatial_size_preserved_odd(self, block_cls, out_channels, rng):
        x = rng.standard_normal((1, 3, 12, 12))
        out = block_cls(3, out_channels, rng=rng)(x)
        assert out.shape[2:] == (12, 12)

    def test_deterministic_under_seed(self, block_cls, out_channels, x):
        a = block_cls(3, out_channels, rng=np.random.default_rng(5))
        b = block_cls(3, out_channels, rng=np.random.default_rng(5))
        assert np.allclose(a(x), b(x))


def test_inception_c_uneven_width(rng, x):
    """Widths that do not divide by 6 still produce the exact out count."""
    block = InceptionC(3, 13, rng=rng)
    assert block(x).shape[1] == 13
