"""Unit tests for FeatureStack."""

import numpy as np
import pytest

from repro.features.maps import FeatureStack


@pytest.fixture()
def stack(rng):
    return FeatureStack(
        channels=["a", "b", "c"],
        data=rng.standard_normal((3, 4, 5)),
    )


class TestConstruction:
    def test_shape_and_channels(self, stack):
        assert stack.num_channels == 3
        assert stack.shape == (4, 5)

    def test_wrong_dims_rejected(self):
        with pytest.raises(ValueError):
            FeatureStack(channels=["a"], data=np.zeros((4, 5)))

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FeatureStack(channels=["a"], data=np.zeros((2, 4, 5)))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            FeatureStack(channels=["a", "a"], data=np.zeros((2, 4, 5)))

    def test_from_dict_preserves_order(self):
        stack = FeatureStack.from_dict(
            {"z": np.zeros((2, 2)), "a": np.ones((2, 2))}
        )
        assert stack.channels == ["z", "a"]
        assert np.array_equal(stack["a"], np.ones((2, 2)))

    def test_from_empty_dict_rejected(self):
        with pytest.raises(ValueError):
            FeatureStack.from_dict({})


class TestAccess:
    def test_getitem(self, stack):
        assert np.array_equal(stack["b"], stack.data[1])

    def test_contains(self, stack):
        assert "a" in stack
        assert "zzz" not in stack

    def test_select_reorders(self, stack):
        sub = stack.select(["c", "a"])
        assert sub.channels == ["c", "a"]
        assert np.array_equal(sub["c"], stack["c"])

    def test_concat(self, stack, rng):
        other = FeatureStack(["d"], rng.standard_normal((1, 4, 5)))
        merged = stack.concat(other)
        assert merged.channels == ["a", "b", "c", "d"]
        assert merged.num_channels == 4

    def test_concat_shape_mismatch(self, stack):
        other = FeatureStack(["d"], np.zeros((1, 9, 9)))
        with pytest.raises(ValueError):
            stack.concat(other)


class TestNormalization:
    def test_minmax_range(self, stack):
        normalized = stack.normalized("minmax")
        for i in range(3):
            assert normalized.data[i].min() == pytest.approx(0.0)
            assert normalized.data[i].max() == pytest.approx(1.0)

    def test_zscore_stats(self, stack):
        normalized = stack.normalized("zscore")
        for i in range(3):
            assert normalized.data[i].mean() == pytest.approx(0.0, abs=1e-10)
            assert normalized.data[i].std() == pytest.approx(1.0)

    def test_constant_channel_maps_to_zero(self):
        stack = FeatureStack(["flat"], np.full((1, 3, 3), 7.0))
        assert np.all(stack.normalized("minmax").data == 0.0)
        assert np.all(stack.normalized("zscore").data == 0.0)

    def test_unknown_mode(self, stack):
        with pytest.raises(ValueError):
            stack.normalized("weird")


class TestSerialization:
    def test_roundtrip(self, tmp_path, stack):
        path = tmp_path / "stack.npz"
        stack.save(path)
        loaded = FeatureStack.load(path)
        assert loaded.channels == stack.channels
        assert np.allclose(loaded.data, stack.data)
