"""Round-trip tests for the SPICE writer."""

from repro.spice.parser import parse_spice
from repro.spice.writer import netlist_to_string, write_spice


def test_roundtrip_preserves_elements(tiny_netlist):
    text = netlist_to_string(tiny_netlist)
    reparsed = parse_spice(text)
    assert reparsed.resistors == tiny_netlist.resistors
    assert reparsed.current_sources == tiny_netlist.current_sources
    assert reparsed.voltage_sources == tiny_netlist.voltage_sources


def test_title_round_trips(tiny_netlist):
    reparsed = parse_spice(netlist_to_string(tiny_netlist))
    assert reparsed.title == tiny_netlist.title


def test_values_written_exactly():
    netlist = parse_spice("R1 a b 0.30000000000000004\n")
    reparsed = parse_spice(netlist_to_string(netlist))
    assert reparsed.resistors[0].resistance == 0.30000000000000004


def test_terminates_with_end(tiny_netlist):
    assert netlist_to_string(tiny_netlist).rstrip().endswith(".end")


def test_write_to_file(tmp_path, tiny_netlist):
    path = tmp_path / "out.sp"
    write_spice(tiny_netlist, path)
    reparsed = parse_spice(path.read_text())
    assert len(reparsed) == len(tiny_netlist)


def test_synthetic_design_roundtrip(fake_design):
    text = netlist_to_string(fake_design.netlist)
    reparsed = parse_spice(text)
    assert len(reparsed.resistors) == len(fake_design.netlist.resistors)
    assert len(reparsed.current_sources) == len(
        fake_design.netlist.current_sources
    )
    assert len(reparsed.voltage_sources) == len(
        fake_design.netlist.voltage_sources
    )
