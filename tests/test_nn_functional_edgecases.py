"""Edge-case coverage for the conv hot path: im2col/col2im vs naive loops.

The vectorised (and workspace-backed) conv2d_forward/backward must agree
with a direct sliding-window reference for the awkward geometries the
happy-path tests never exercise: stride > 1 with uneven padding, even
kernels, and 1xN / Nx1 kernels.
"""

import numpy as np
import pytest

from repro.nn.functional import (
    Workspace,
    col2im,
    conv2d_backward,
    conv2d_forward,
    im2col,
)

#: (kernel, stride, padding) geometries under test.
GEOMETRIES = [
    pytest.param((3, 3), (2, 2), (1, 0), id="stride2-uneven-pad"),
    pytest.param((3, 3), (3, 2), (0, 1), id="mixed-stride"),
    pytest.param((2, 2), (1, 1), (0, 0), id="even-kernel"),
    pytest.param((2, 2), (2, 2), (1, 1), id="even-kernel-strided"),
    pytest.param((1, 5), (1, 1), (0, 2), id="1xN-kernel"),
    pytest.param((5, 1), (1, 1), (2, 0), id="Nx1-kernel"),
    pytest.param((1, 1), (2, 2), (0, 0), id="pointwise-strided"),
]


def naive_conv_forward(x, weight, bias, stride, padding):
    """Direct sliding-window convolution (correlation), looped."""
    n, c, h, w = x.shape
    filters, _, kh, kw = weight.shape
    sh, sw = stride
    ph, pw = padding
    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    out = np.zeros((n, filters, out_h, out_w))
    for img in range(n):
        for f in range(filters):
            for i in range(out_h):
                for j in range(out_w):
                    patch = padded[
                        img, :, i * sh : i * sh + kh, j * sw : j * sw + kw
                    ]
                    out[img, f, i, j] = np.sum(patch * weight[f])
            if bias is not None:
                out[img, f] += bias[f]
    return out


def naive_conv_backward(grad_output, x, weight, stride, padding):
    """Gradients of the naive convolution, looped."""
    n, c, h, w = x.shape
    filters, _, kh, kw = weight.shape
    sh, sw = stride
    ph, pw = padding
    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    grad_padded = np.zeros_like(padded)
    grad_weight = np.zeros_like(weight)
    _, _, out_h, out_w = grad_output.shape
    for img in range(n):
        for f in range(filters):
            for i in range(out_h):
                for j in range(out_w):
                    g = grad_output[img, f, i, j]
                    sl = (
                        img,
                        slice(None),
                        slice(i * sh, i * sh + kh),
                        slice(j * sw, j * sw + kw),
                    )
                    grad_weight[f] += g * padded[sl]
                    grad_padded[sl] += g * weight[f]
    grad_input = grad_padded[
        :, :, ph : ph + h, pw : pw + w
    ]
    grad_bias = grad_output.sum(axis=(0, 2, 3))
    return grad_input, grad_weight, grad_bias


@pytest.fixture(params=[None, "workspace"])
def workspace(request):
    return Workspace() if request.param else None


@pytest.mark.parametrize("kernel,stride,padding", GEOMETRIES)
class TestConvAgainstNaive:
    def _setup(self, kernel, stride, padding):
        rng = np.random.default_rng(42)
        kh, kw = kernel
        ph, pw = padding
        # Input just big enough for >= 2 output positions on each axis.
        h = max(kh + stride[0], kh - 2 * ph + stride[0]) + 3
        w = max(kw + stride[1], kw - 2 * pw + stride[1]) + 3
        x = rng.standard_normal((2, 3, h, w))
        weight = rng.standard_normal((4, 3, kh, kw))
        bias = rng.standard_normal(4)
        return x, weight, bias

    def test_forward_matches(self, kernel, stride, padding, workspace):
        x, weight, bias = self._setup(kernel, stride, padding)
        out, _ = conv2d_forward(x, weight, bias, stride, padding, workspace)
        expected = naive_conv_forward(x, weight, bias, stride, padding)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_backward_matches(self, kernel, stride, padding, workspace):
        x, weight, bias = self._setup(kernel, stride, padding)
        out, cols = conv2d_forward(x, weight, bias, stride, padding, workspace)
        rng = np.random.default_rng(7)
        grad_out = rng.standard_normal(out.shape)
        grad_input, grad_weight, grad_bias = conv2d_backward(
            grad_out, cols, x.shape, weight, stride, padding,
            with_bias=True, workspace=workspace,
        )
        exp_input, exp_weight, exp_bias = naive_conv_backward(
            grad_out, x, weight, stride, padding
        )
        np.testing.assert_allclose(grad_input, exp_input, atol=1e-12)
        np.testing.assert_allclose(grad_weight, exp_weight, atol=1e-12)
        np.testing.assert_allclose(grad_bias, exp_bias, atol=1e-12)

    def test_im2col_col2im_adjoint(self, kernel, stride, padding, workspace):
        """<im2col(x), y> == <x, col2im(y)> for random x, y."""
        x, _, _ = self._setup(kernel, stride, padding)
        cols = im2col(x, kernel, stride, padding, workspace)
        rng = np.random.default_rng(3)
        y = rng.standard_normal(cols.shape)
        lhs = float(np.sum(cols * y))
        back = col2im(y, x.shape, kernel, stride, padding, workspace)
        rhs = float(np.sum(x * np.asarray(back)))
        assert lhs == pytest.approx(rhs, rel=1e-12)


class TestWorkspaceReuse:
    def test_repeated_calls_are_stable(self):
        """Buffer reuse across calls must not corrupt later results."""
        ws = Workspace()
        rng = np.random.default_rng(0)
        x1 = rng.standard_normal((2, 3, 9, 9))
        x2 = rng.standard_normal((2, 3, 9, 9))
        w = rng.standard_normal((4, 3, 3, 3))
        fresh1, _ = conv2d_forward(x1, w, None, (2, 2), (1, 0))
        fresh2, _ = conv2d_forward(x2, w, None, (2, 2), (1, 0))
        for _ in range(3):
            out1, _ = conv2d_forward(x1, w, None, (2, 2), (1, 0), ws)
            out2, _ = conv2d_forward(x2, w, None, (2, 2), (1, 0), ws)
            np.testing.assert_array_equal(out1, fresh1)
            np.testing.assert_array_equal(out2, fresh2)

    def test_shape_change_reallocates(self):
        ws = Workspace()
        a = ws.request("buf", (4, 4))
        b = ws.request("buf", (4, 4))
        c = ws.request("buf", (2, 8))
        assert a is b
        assert c.shape == (2, 8)

    def test_refill_resets_values(self):
        ws = Workspace()
        buf = ws.request("buf", (3,), refill=0.0)
        buf[:] = 7.0
        again = ws.request("buf", (3,), refill=0.0)
        assert again is buf
        np.testing.assert_array_equal(again, np.zeros(3))
