"""Unit tests for the signoff checker."""

import numpy as np
import pytest

from repro.eval.signoff import check_ir_drop


class TestCheckIRDrop:
    def test_clean_map_passes(self):
        report = check_ir_drop(np.full((8, 8), 0.01), limit=0.05)
        assert report.passed
        assert report.worst_drop == pytest.approx(0.01)
        assert report.violation_area_fraction == 0.0
        assert "PASS" in report.summary()

    def test_single_violation_region(self):
        drop = np.zeros((8, 8))
        drop[2:4, 2:4] = 0.1
        report = check_ir_drop(drop, limit=0.05)
        assert not report.passed
        assert len(report.regions) == 1
        region = report.regions[0]
        assert region.pixel_count == 4
        assert region.worst_drop == pytest.approx(0.1)
        assert region.centroid == (2.5, 2.5)
        assert region.bounding_box == (2, 2, 3, 3)
        assert "FAIL" in report.summary()

    def test_two_separate_regions(self):
        drop = np.zeros((8, 8))
        drop[0, 0] = 0.2
        drop[7, 7] = 0.3
        report = check_ir_drop(drop, limit=0.1)
        assert len(report.regions) == 2
        # sorted by severity
        assert report.regions[0].worst_drop == pytest.approx(0.3)

    def test_diagonal_pixels_are_one_region(self):
        drop = np.zeros((4, 4))
        drop[0, 0] = 0.2
        drop[1, 1] = 0.2  # 8-connected to (0,0)
        report = check_ir_drop(drop, limit=0.1)
        assert len(report.regions) == 1
        assert report.regions[0].pixel_count == 2

    def test_area_fraction(self):
        drop = np.zeros((10, 10))
        drop[:5, :] = 1.0
        report = check_ir_drop(drop, limit=0.5)
        assert report.violation_area_fraction == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            check_ir_drop(np.zeros(5), limit=0.1)
        with pytest.raises(ValueError):
            check_ir_drop(np.zeros((2, 2)), limit=0.0)

    def test_on_real_pipeline_output(self, fake_sample):
        """Golden labels from the generator produce a sensible report."""
        limit = 0.5 * fake_sample.label.max()
        report = check_ir_drop(fake_sample.label, limit=limit)
        assert not report.passed
        assert report.worst_drop == pytest.approx(fake_sample.label.max())
        assert report.regions[0].worst_drop == report.worst_drop
