"""Unit tests for FusionConfig."""

import pytest

from repro.core.config import FusionConfig
from repro.features.fusion import FeatureConfig


class TestValidation:
    def test_defaults_valid(self):
        config = FusionConfig()
        assert config.pixels % (2**config.depth) == 0

    def test_pixels_divisibility_enforced(self):
        with pytest.raises(ValueError):
            FusionConfig(pixels=20, depth=3)

    def test_empty_training_suite_rejected(self):
        with pytest.raises(ValueError):
            FusionConfig(num_fake=0, num_real_train=0)

    def test_negative_solver_iterations_rejected(self):
        with pytest.raises(ValueError):
            FusionConfig(solver_iterations=-1)


class TestWith:
    def test_with_overrides_field(self):
        config = FusionConfig()
        changed = config.with_(model_name="pgau")
        assert changed.model_name == "pgau"
        assert config.model_name == "ir_fusion"  # original untouched

    def test_with_nested_features(self):
        config = FusionConfig()
        changed = config.with_(features=FeatureConfig(use_numerical=False))
        assert not changed.features.use_numerical
        assert config.features.use_numerical

    def test_with_validates(self):
        with pytest.raises(ValueError):
            FusionConfig().with_(pixels=17)
