"""Unit tests for the project call graph on a synthetic package."""

import ast
from pathlib import Path

import pytest

from repro.analysis.callgraph import (
    MAX_ATTR_CANDIDATES,
    CallGraph,
    module_name,
)
from repro.analysis.engine import ModuleSource


def _mod(path: str, source: str) -> ModuleSource:
    return ModuleSource(
        path=path,
        abspath=Path("/synthetic") / path,
        source=source,
        tree=ast.parse(source),
    )


@pytest.fixture()
def graph() -> CallGraph:
    """A small synthetic ``repro.zsynth`` package exercising every
    resolution layer: from-imports, module aliases, fully-qualified
    names, relative imports, classes, inheritance, and references."""
    modules = [
        _mod("src/repro/zsynth/__init__.py", ""),
        _mod(
            "src/repro/zsynth/beta.py",
            "def helper(x):\n"
            "    return x + 1\n"
            "\n"
            "\n"
            "class Widget:\n"
            "    def __init__(self, x):\n"
            "        self.x = x\n"
            "\n"
            "    def __call__(self):\n"
            "        return helper(self.x)\n"
            "\n"
            "\n"
            "class Base:\n"
            "    def ping(self):\n"
            "        return 0\n",
        ),
        _mod(
            "src/repro/zsynth/alpha.py",
            "import repro.zsynth.beta\n"
            "from repro.zsynth import beta as b\n"
            "from repro.zsynth.beta import Base, Widget, helper\n"
            "\n"
            "\n"
            "def top(x):\n"
            "    return helper(x)\n"
            "\n"
            "\n"
            "def via_alias(x):\n"
            "    return b.helper(x)\n"
            "\n"
            "\n"
            "def via_full(x):\n"
            "    return repro.zsynth.beta.helper(x)\n"
            "\n"
            "\n"
            "def builds(x):\n"
            "    return Widget(x)\n"
            "\n"
            "\n"
            "def ships(run, items):\n"
            "    return run(helper, items)\n"
            "\n"
            "\n"
            "class Child(Base):\n"
            "    def go(self):\n"
            "        return self.ping()\n",
        ),
        _mod(
            "src/repro/zsynth/gamma.py",
            "from .beta import helper\n"
            "\n"
            "\n"
            "def rel(x):\n"
            "    return helper(x)\n",
        ),
        _mod(
            "src/repro/zsynth/fanout.py",
            "class P:\n"
            "    def mystery(self):\n"
            "        return 1\n"
            "\n"
            "\n"
            "class Q:\n"
            "    def mystery(self):\n"
            "        return 2\n"
            "\n"
            "\n"
            "def dispatch(obj):\n"
            "    return obj.mystery()\n"
            "\n"
            "\n"
            "def generic(obj):\n"
            "    return obj.common()\n",
        ),
        # MAX_ATTR_CANDIDATES + 2 classes defining "common": too generic.
        _mod(
            "src/repro/zsynth/noise.py",
            "\n\n".join(
                f"class N{i}:\n    def common(self):\n        return {i}"
                for i in range(MAX_ATTR_CANDIDATES + 2)
            ),
        ),
    ]
    return CallGraph.build(modules)


class TestModuleName:
    def test_plain_module(self):
        assert module_name("src/repro/core/pool.py") == "repro.core.pool"

    def test_package_init_is_the_package(self):
        assert module_name("src/repro/core/__init__.py") == "repro.core"

    def test_non_src_paths_excluded(self):
        assert module_name("tests/test_x.py") is None
        assert module_name("src/repro/data.json") is None


class TestResolution:
    def test_from_import_call(self, graph):
        assert (
            "repro.zsynth.beta.helper"
            in graph.edges["repro.zsynth.alpha.top"]
        )

    def test_module_alias_attribute_call(self, graph):
        assert (
            "repro.zsynth.beta.helper"
            in graph.edges["repro.zsynth.alpha.via_alias"]
        )

    def test_fully_qualified_call(self, graph):
        assert (
            "repro.zsynth.beta.helper"
            in graph.edges["repro.zsynth.alpha.via_full"]
        )

    def test_relative_import_resolves_against_package(self, graph):
        assert (
            "repro.zsynth.beta.helper"
            in graph.edges["repro.zsynth.gamma.rel"]
        )

    def test_class_call_resolves_to_init(self, graph):
        assert (
            "repro.zsynth.beta.Widget.__init__"
            in graph.edges["repro.zsynth.alpha.builds"]
        )

    def test_init_links_to_call_dunder(self, graph):
        # callable objects stay reachable through construction sites
        assert (
            "repro.zsynth.beta.Widget.__call__"
            in graph.edges["repro.zsynth.beta.Widget.__init__"]
        )

    def test_callable_reference_argument_adds_edge(self, graph):
        # `run(helper, items)` never calls helper syntactically, but the
        # reference must still be an edge (pool hand-off pattern)
        assert (
            "repro.zsynth.beta.helper"
            in graph.edges["repro.zsynth.alpha.ships"]
        )

    def test_self_call_resolves_through_base_class(self, graph):
        assert (
            "repro.zsynth.beta.Base.ping"
            in graph.edges["repro.zsynth.alpha.Child.go"]
        )

    def test_attribute_fanout_bounded(self, graph):
        # "mystery" lives on 2 classes: both become candidate edges
        edges = graph.edges["repro.zsynth.fanout.dispatch"]
        assert "repro.zsynth.fanout.P.mystery" in edges
        assert "repro.zsynth.fanout.Q.mystery" in edges

    def test_over_generic_attribute_drops_edges(self, graph):
        # "common" lives on MAX_ATTR_CANDIDATES + 2 classes: no edges
        assert graph.edges["repro.zsynth.fanout.generic"] == set()


class TestQueries:
    def test_reachable_from_returns_shortest_paths(self, graph):
        paths = graph.reachable_from(
            {"repro.zsynth.alpha.top": "test entry"}
        )
        assert paths["repro.zsynth.alpha.top"] == [
            "test entry",
            "repro.zsynth.alpha.top",
        ]
        assert paths["repro.zsynth.beta.helper"] == [
            "test entry",
            "repro.zsynth.alpha.top",
            "repro.zsynth.beta.helper",
        ]

    def test_reachability_crosses_construction(self, graph):
        paths = graph.reachable_from(
            {"repro.zsynth.alpha.builds": "entry"}
        )
        # builds -> Widget.__init__ -> Widget.__call__ -> helper
        assert "repro.zsynth.beta.Widget.__call__" in paths
        assert "repro.zsynth.beta.helper" in paths

    def test_unknown_entry_is_ignored(self, graph):
        assert graph.reachable_from({"repro.nope.fn": "x"}) == {}

    def test_callers_of(self, graph):
        callers = graph.callers_of("repro.zsynth.beta.helper")
        assert "repro.zsynth.alpha.top" in callers
        assert "repro.zsynth.gamma.rel" in callers

    def test_resolve_use_site_import_and_self(self, graph):
        assert (
            graph.resolve_use_site("repro.zsynth.alpha", "helper")
            == "repro.zsynth.beta.helper"
        )
        assert (
            graph.resolve_use_site(
                "repro.zsynth.alpha", "self.ping", cls="Child"
            )
            == "repro.zsynth.beta.Base.ping"
        )
        assert (
            graph.resolve_use_site("repro.zsynth.alpha", "json.loads")
            is None
        )

    def test_function_at_maps_node_back_to_info(self, graph):
        info = graph.functions["repro.zsynth.alpha.top"]
        assert (
            graph.function_at("src/repro/zsynth/alpha.py", info.node)
            is info
        )
        assert info.name == "top"
        assert info.cls is None
        assert graph.functions["repro.zsynth.alpha.Child.go"].cls == "Child"
