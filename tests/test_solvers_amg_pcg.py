"""Unit tests for the AMG-PCG solver (the PowerRush core)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.mna.stamper import build_reduced_system
from repro.solvers.amg import AMGOptions
from repro.solvers.amg_pcg import AMGPCGSolver
from repro.solvers.base import SolverOptions
from repro.solvers.cache import clear_setup_cache
from repro.solvers.cg import CGSolver


def _tridiag(n: int, scale: float = 1.0) -> sp.coo_matrix:
    """SPD tridiagonal system in COO form.

    COO on purpose: the hierarchy stores the CSR conversion, so the COO
    wrapper itself is collectable — which is what lets the address-reuse
    regression test below actually recreate the stale-``id`` scenario.
    """
    main = np.full(n, 2.0 * scale)
    off = np.full(n - 1, -scale)
    return sp.coo_matrix(sp.diags([off, main, off], [-1, 0, 1]))


@pytest.fixture(scope="module")
def pg_system(fake_design):
    return build_reduced_system(fake_design.grid)


class TestAMGPCG:
    def test_converges_to_tight_tolerance(self, pg_system):
        solver = AMGPCGSolver(SolverOptions(tol=1e-12))
        result = solver.solve(pg_system.matrix, pg_system.rhs)
        assert result.converged
        assert pg_system.relative_residual(result.x) < 1e-10

    def test_far_fewer_iterations_than_cg(self, pg_system):
        options = SolverOptions(tol=1e-10, max_iterations=10_000)
        cg = CGSolver(options).solve(pg_system.matrix, pg_system.rhs)
        amg = AMGPCGSolver(options).solve(pg_system.matrix, pg_system.rhs)
        assert amg.converged and cg.converged
        assert amg.iterations < cg.iterations / 2

    def test_rough_solution_at_two_iterations(self, pg_system):
        solver = AMGPCGSolver(SolverOptions(max_iterations=2, tol=1e-14))
        result = solver.solve(pg_system.matrix, pg_system.rhs)
        assert result.iterations == 2
        # rough but meaningful: at least two orders below the initial residual
        assert result.residual_norms[-1] < result.residual_norms[0] * 1e-1

    def test_monotone_error_with_iterations(self, pg_system):
        import scipy.sparse.linalg as sla

        exact = np.asarray(sla.spsolve(pg_system.matrix.tocsc(), pg_system.rhs))
        errors = []
        for budget in (1, 3, 6):
            solver = AMGPCGSolver(SolverOptions(max_iterations=budget, tol=1e-16))
            result = solver.solve(pg_system.matrix, pg_system.rhs)
            errors.append(np.linalg.norm(result.x - exact))
        assert errors[0] > errors[1] > errors[2]

    def test_hierarchy_cached_between_solves(self, pg_system):
        solver = AMGPCGSolver(SolverOptions(max_iterations=2))
        solver.solve(pg_system.matrix, pg_system.rhs)
        first = solver.hierarchy
        solver.solve(pg_system.matrix, pg_system.rhs)
        assert solver.hierarchy is first

    def test_hierarchy_rebuilt_for_new_matrix(self, pg_system, real_design):
        solver = AMGPCGSolver(SolverOptions(max_iterations=2))
        solver.solve(pg_system.matrix, pg_system.rhs)
        first = solver.hierarchy
        other = build_reduced_system(real_design.grid)
        solver.solve(other.matrix, other.rhs)
        assert solver.hierarchy is not first

    def test_setup_time_accounted(self, pg_system):
        solver = AMGPCGSolver(SolverOptions(max_iterations=2))
        result = solver.solve(pg_system.matrix, pg_system.rhs)
        assert result.setup_seconds >= 0.0

    def test_custom_amg_options(self, pg_system):
        solver = AMGPCGSolver(
            SolverOptions(tol=1e-10),
            amg_options=AMGOptions(max_coarse_size=16, passes_per_level=1),
        )
        result = solver.solve(pg_system.matrix, pg_system.rhs)
        assert result.converged

    def test_initial_guess_respected(self, pg_system):
        import scipy.sparse.linalg as sla

        exact = np.asarray(sla.spsolve(pg_system.matrix.tocsc(), pg_system.rhs))
        solver = AMGPCGSolver(SolverOptions(tol=1e-8))
        result = solver.solve(pg_system.matrix, pg_system.rhs, x0=exact)
        assert result.iterations == 0


class TestSetupReuse:
    """The identity fast path and the setup-seconds accounting contract."""

    def test_address_reuse_never_resurrects_stale_setup(self):
        # Regression: the fast path used to key on the raw ``id()`` of
        # the last matrix without holding a reference.  Once that matrix
        # was garbage collected, CPython could hand its address to a
        # *different* matrix, silently reusing the stale preconditioner.
        solver = AMGPCGSolver(
            SolverOptions(max_iterations=2), use_setup_cache=False
        )
        matrix = _tridiag(48, scale=1.0)
        solver.setup(matrix)
        first_hierarchy = solver.hierarchy
        stale_id = id(matrix)
        del matrix
        # Recreate the address-reuse scenario: allocate equal-shaped
        # matrices until one lands on the dead wrapper's address.  With
        # the fix the solver keeps the original alive, so a collision is
        # impossible and the loop falls through to a plain fresh matrix —
        # either way, setup must rebuild for the new values.
        candidate = None
        for _ in range(4096):
            candidate = _tridiag(48, scale=3.0)
            if id(candidate) == stale_id:
                break
            candidate = None
        if candidate is None:
            candidate = _tridiag(48, scale=3.0)
        preconditioner = solver.setup(candidate)
        assert solver.hierarchy is not first_hierarchy
        np.testing.assert_array_equal(
            preconditioner.hierarchy.levels[0].matrix.toarray(),
            candidate.toarray(),
        )

    def test_setup_seconds_zero_on_same_object_reuse(self, pg_system):
        # Accounting contract: a reused setup costs nothing, so it must
        # report nothing — the old code re-billed the original build to
        # every subsequent solve.
        solver = AMGPCGSolver(
            SolverOptions(max_iterations=2), use_setup_cache=False
        )
        first = solver.solve(pg_system.matrix, pg_system.rhs)
        second = solver.solve(pg_system.matrix, pg_system.rhs)
        assert first.setup_seconds > 0.0
        assert second.setup_seconds == 0.0

    def test_fingerprint_hit_reports_lookup_not_build(self):
        clear_setup_cache()
        matrix = _tridiag(400).tocsr()
        rhs = np.ones(400)
        try:
            cold = AMGPCGSolver(SolverOptions(max_iterations=2))
            cold_result = cold.solve(matrix, rhs)
            assert not cold.last_setup_was_cache_hit

            warm = AMGPCGSolver(SolverOptions(max_iterations=2))
            warm_result = warm.solve(matrix.copy(), rhs)
            assert warm.last_setup_was_cache_hit
            # A hit reports just the hash-and-lookup time: positive, but
            # well under the cold build it skipped.
            assert 0.0 < warm_result.setup_seconds < cold_result.setup_seconds
        finally:
            clear_setup_cache()
