"""Unit tests for the AMG-PCG solver (the PowerRush core)."""

import numpy as np
import pytest

from repro.mna.stamper import build_reduced_system
from repro.solvers.amg import AMGOptions
from repro.solvers.amg_pcg import AMGPCGSolver
from repro.solvers.base import SolverOptions
from repro.solvers.cg import CGSolver


@pytest.fixture(scope="module")
def pg_system(fake_design):
    return build_reduced_system(fake_design.grid)


class TestAMGPCG:
    def test_converges_to_tight_tolerance(self, pg_system):
        solver = AMGPCGSolver(SolverOptions(tol=1e-12))
        result = solver.solve(pg_system.matrix, pg_system.rhs)
        assert result.converged
        assert pg_system.relative_residual(result.x) < 1e-10

    def test_far_fewer_iterations_than_cg(self, pg_system):
        options = SolverOptions(tol=1e-10, max_iterations=10_000)
        cg = CGSolver(options).solve(pg_system.matrix, pg_system.rhs)
        amg = AMGPCGSolver(options).solve(pg_system.matrix, pg_system.rhs)
        assert amg.converged and cg.converged
        assert amg.iterations < cg.iterations / 2

    def test_rough_solution_at_two_iterations(self, pg_system):
        solver = AMGPCGSolver(SolverOptions(max_iterations=2, tol=1e-14))
        result = solver.solve(pg_system.matrix, pg_system.rhs)
        assert result.iterations == 2
        # rough but meaningful: at least two orders below the initial residual
        assert result.residual_norms[-1] < result.residual_norms[0] * 1e-1

    def test_monotone_error_with_iterations(self, pg_system):
        import scipy.sparse.linalg as sla

        exact = np.asarray(sla.spsolve(pg_system.matrix.tocsc(), pg_system.rhs))
        errors = []
        for budget in (1, 3, 6):
            solver = AMGPCGSolver(SolverOptions(max_iterations=budget, tol=1e-16))
            result = solver.solve(pg_system.matrix, pg_system.rhs)
            errors.append(np.linalg.norm(result.x - exact))
        assert errors[0] > errors[1] > errors[2]

    def test_hierarchy_cached_between_solves(self, pg_system):
        solver = AMGPCGSolver(SolverOptions(max_iterations=2))
        solver.solve(pg_system.matrix, pg_system.rhs)
        first = solver.hierarchy
        solver.solve(pg_system.matrix, pg_system.rhs)
        assert solver.hierarchy is first

    def test_hierarchy_rebuilt_for_new_matrix(self, pg_system, real_design):
        solver = AMGPCGSolver(SolverOptions(max_iterations=2))
        solver.solve(pg_system.matrix, pg_system.rhs)
        first = solver.hierarchy
        other = build_reduced_system(real_design.grid)
        solver.solve(other.matrix, other.rhs)
        assert solver.hierarchy is not first

    def test_setup_time_accounted(self, pg_system):
        solver = AMGPCGSolver(SolverOptions(max_iterations=2))
        result = solver.solve(pg_system.matrix, pg_system.rhs)
        assert result.setup_seconds >= 0.0

    def test_custom_amg_options(self, pg_system):
        solver = AMGPCGSolver(
            SolverOptions(tol=1e-10),
            amg_options=AMGOptions(max_coarse_size=16, passes_per_level=1),
        )
        result = solver.solve(pg_system.matrix, pg_system.rhs)
        assert result.converged

    def test_initial_guess_respected(self, pg_system):
        import scipy.sparse.linalg as sla

        exact = np.asarray(sla.spsolve(pg_system.matrix.tocsc(), pg_system.rhs))
        solver = AMGPCGSolver(SolverOptions(tol=1e-8))
        result = solver.solve(pg_system.matrix, pg_system.rhs, x0=exact)
        assert result.iterations == 0
