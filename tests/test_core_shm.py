"""Tests for the shared-memory data plane (:mod:`repro.core.shm`)."""

import os
import pickle

import numpy as np
import pytest

from repro.core import shm
from repro.core.batch import parallel_map_ex
from repro.obs import metrics_snapshot
from repro.testing.faults import WorkerFaultPlan

pytestmark = pytest.mark.skipif(
    not shm.available(), reason="no writable /dev/shm on this host"
)


def _leftover_segments() -> list[str]:
    """Segments in /dev/shm belonging to this process's arena."""
    prefix = shm.ARENA.token + "_"
    return [f for f in os.listdir(shm.SHM_DIR) if f.startswith(prefix)]


def _scoped(label: str) -> str:
    return shm.ARENA.scope(label)


class TestShmArray:
    def test_roundtrip_is_bitwise_and_read_only(self):
        scope = _scoped("t_rt")
        try:
            source = np.arange(24, dtype=np.float64).reshape(4, 6) * np.pi
            desc = shm.ARENA.share(source, scope)
            view = desc.resolve()
            assert np.array_equal(view, source)
            assert view.dtype == source.dtype
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0, 0] = 1.0
        finally:
            shm.ARENA.release_scope(scope)

    def test_fortran_order_and_exotic_dtypes_survive(self):
        scope = _scoped("t_ord")
        try:
            fortran = np.asfortranarray(
                np.arange(12, dtype=np.float32).reshape(3, 4)
            )
            view = shm.ARENA.share(fortran, scope).resolve()
            assert view.flags.f_contiguous
            assert np.array_equal(view, fortran)
            for dtype in (np.int32, np.complex128, np.bool_):
                data = np.ones((5, 5), dtype=dtype)
                got = shm.ARENA.share(data, scope).resolve()
                assert got.dtype == data.dtype
                assert np.array_equal(got, data)
        finally:
            shm.ARENA.release_scope(scope)

    def test_descriptor_pickles_small(self):
        scope = _scoped("t_desc")
        try:
            desc = shm.ARENA.share(np.zeros((128, 128)), scope)
            assert len(pickle.dumps(desc)) < 300
        finally:
            shm.ARENA.release_scope(scope)

    def test_subarray_slots_alias_the_block(self):
        scope = _scoped("t_sub")
        try:
            block = shm.ARENA.allocate((3, 5), np.float64, scope)
            for row in range(3):
                slot = shm.subarray(block, row)
                slot.resolve(writable=True)[:] = row + 0.5
            view = block.resolve()
            assert np.array_equal(view[:, 0], [0.5, 1.5, 2.5])
            with pytest.raises(IndexError):
                shm.subarray(block, 3)
        finally:
            shm.ARENA.release_scope(scope)

    def test_views_survive_release(self):
        # POSIX keeps pages alive while mapped: unlink-early is safe.
        scope = _scoped("t_life")
        source = np.random.default_rng(3).standard_normal(512)
        view = shm.ARENA.share(source, scope).resolve()
        shm.ARENA.release_scope(scope)
        assert not _leftover_segments()
        assert np.array_equal(view, source)


class TestThreshold:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv(shm.THRESHOLD_ENV, raising=False)
        assert shm.shm_threshold() == shm.DEFAULT_THRESHOLD
        monkeypatch.setenv(shm.THRESHOLD_ENV, "1234")
        assert shm.shm_threshold() == 1234
        monkeypatch.setenv(shm.THRESHOLD_ENV, "off")
        assert shm.shm_threshold() == 0
        monkeypatch.setenv(shm.THRESHOLD_ENV, "nonsense")
        assert shm.shm_threshold() == shm.DEFAULT_THRESHOLD
        assert shm.shm_threshold(4096) == 4096  # explicit wins over env

    def test_config_field_validation(self):
        from repro.core.config import FusionConfig

        assert FusionConfig(shm_threshold=0).shm_threshold == 0
        with pytest.raises(ValueError):
            FusionConfig(shm_threshold=-1)


class TestDumpsLoads:
    def test_externalizes_above_threshold_only(self):
        scope = _scoped("t_dump")
        try:
            writer = lambda array: shm.ARENA.share(array, scope)  # noqa: E731
            payload = {
                "big": np.zeros((64, 64)),
                "small": np.arange(4, dtype=np.float64),
                "other": "text",
            }
            blob = shm.dumps(payload, threshold=1024, writer=writer)
            assert len(blob) < 1024  # the 32 KiB array became a descriptor
            restored = shm.loads(blob)
            assert np.array_equal(restored["big"], payload["big"])
            assert np.array_equal(restored["small"], payload["small"])
            assert not restored["big"].flags.writeable
            assert restored["small"].flags.writeable  # stayed inline
        finally:
            shm.ARENA.release_scope(scope)

    def test_threshold_zero_means_plain_pickle(self):
        blob = shm.dumps({"x": np.zeros(9000)}, threshold=0, writer=None)
        assert np.array_equal(pickle.loads(blob)["x"], np.zeros(9000))

    def test_aliasing_within_payload_is_preserved_inline(self):
        arr = np.zeros(8)
        blob = shm.dumps([arr, arr], threshold=0, writer=None)
        a, b = shm.loads(blob)
        assert a is b


class TestArena:
    def test_refcounts_and_release(self):
        scope_a = _scoped("t_ref_a")
        scope_b = _scoped("t_ref_b")
        before = shm.ARENA.segments_active
        desc = shm.ARENA.share(np.ones(1000), scope_a)
        shm.ARENA.retain(desc.name, scope_b)
        assert shm.ARENA.segments_active == before + 1
        shm.ARENA.release_scope(scope_a)
        # still referenced by scope_b
        assert shm.ARENA.segments_active == before + 1
        assert np.array_equal(desc.resolve(), np.ones(1000))
        shm.ARENA.release_scope(scope_b)
        assert shm.ARENA.segments_active == before
        assert not _leftover_segments()

    def test_gauge_tracks_active_segments(self):
        scope = _scoped("t_gauge")
        shm.ARENA.share(np.ones(64), scope)
        assert (
            metrics_snapshot()["gauges"]["shm.segments_active"]
            == shm.ARENA.segments_active
        )
        shm.ARENA.release_scope(scope)

    def test_sweep_orphans_removes_unregistered_segments(self):
        scope = _scoped("t_orph")
        # Simulate a crashed worker's leftover: a scope-named segment the
        # arena never registered.
        orphan = f"{scope}_w99t1k0"
        shm.write_segment(orphan, np.zeros(256))
        assert orphan in os.listdir(shm.SHM_DIR)
        swept = shm.ARENA.sweep_orphans(scope)
        assert swept == 1
        assert orphan not in os.listdir(shm.SHM_DIR)


def _double_arrays(item):
    name, array = item
    return name, array * 2.0, np.zeros((32, 32)) + len(name)


class TestPoolTransport:
    def test_spawn_results_bitwise_identical_to_inline(self):
        items = [
            (f"item{k}", np.random.default_rng(k).standard_normal((64, 64)))
            for k in range(4)
        ]
        shm_out, _ = parallel_map_ex(
            _double_arrays, items, 2, shm_threshold=1024
        )
        inline_out, _ = parallel_map_ex(
            _double_arrays, items, 2, shm_threshold=0
        )
        assert all(o.ok for o in shm_out) and all(o.ok for o in inline_out)
        for via_shm, via_pipe in zip(shm_out, inline_out):
            assert via_shm.result[0] == via_pipe.result[0]
            assert np.array_equal(via_shm.result[1], via_pipe.result[1])
            assert np.array_equal(via_shm.result[2], via_pipe.result[2])
        assert not _leftover_segments()

    def test_result_views_are_read_only(self):
        items = [("ro", np.ones((64, 64)))]
        outcomes, _ = parallel_map_ex(
            _double_arrays, items, 2, shm_threshold=1024
        )
        if outcomes[0].ok:  # serial fallback keeps plain arrays
            result_array = outcomes[0].result[1]
            before = result_array.copy()
            assert np.array_equal(result_array, before)

    def test_chaos_kill_while_holding_segments_reclaims_all(self):
        """Satellite: SIGKILL with attached segments must not leak.

        The fault fires inside the task, after the worker has attached
        the item's shared segments — the crashed process can never
        detach them itself.  The retry must succeed, the parent must
        drop every job ref, and /dev/shm must end clean.
        """
        plan = WorkerFaultPlan.from_spec("kill@1x1")
        items = [
            (f"chaos{k}", np.full((64, 64), float(k))) for k in range(4)
        ]
        before_active = shm.ARENA.segments_active
        outcomes, _ = parallel_map_ex(
            _double_arrays, items, 2,
            fault_plan=plan, retries=2, shm_threshold=1024,
        )
        assert all(o.ok for o in outcomes)
        assert outcomes[1].attempts >= 2  # the kill really fired
        for k, outcome in enumerate(outcomes):
            assert np.array_equal(
                outcome.result[1], np.full((64, 64), float(k)) * 2.0
            )
        assert shm.ARENA.segments_active == before_active
        assert metrics_snapshot()["gauges"]["shm.segments_active"] == 0
        assert not _leftover_segments()

    def test_chaos_kill_to_quarantine_reclaims_all(self):
        plan = WorkerFaultPlan.from_spec("kill@0")  # every attempt
        items = [
            (f"quar{k}", np.full((64, 64), float(k))) for k in range(3)
        ]
        before_active = shm.ARENA.segments_active
        outcomes, _ = parallel_map_ex(
            _double_arrays, items, 2,
            fault_plan=plan, retries=1, shm_threshold=1024,
        )
        assert outcomes[0].quarantine is not None
        assert all(o.ok for o in outcomes[1:])
        assert shm.ARENA.segments_active == before_active
        assert not _leftover_segments()
