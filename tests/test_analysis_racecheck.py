"""Tests for the runtime lock-order/race sanitizer.

These tests instrument *local* lock/dict instances with a private
:class:`_Recorder` rather than calling :func:`install` — the global
install wraps process-wide singletons (metrics registry, shm arena) and
would leak strict-mode instrumentation into unrelated tests.
"""

import threading

import pytest

from repro.analysis.racecheck import (
    GuardedDict,
    GuardedOrderedDict,
    RaceError,
    TrackedLock,
    _Recorder,
    install_from_env,
)


@pytest.fixture()
def rec() -> _Recorder:
    return _Recorder(strict=False)


def _locks(rec, *labels):
    return tuple(
        TrackedLock(threading.Lock(), label, rec) for label in labels
    )


class TestLockOrder:
    def test_consistent_order_is_clean(self, rec):
        a, b = _locks(rec, "A", "B")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert rec.findings == []

    def test_inversion_recorded_with_both_stacks(self, rec):
        a, b = _locks(rec, "A", "B")
        with a:
            with b:
                pass
        with b:
            with a:  # opposite order: inversion
                pass
        assert len(rec.findings) == 1
        finding = rec.findings[0]
        assert finding.kind == "lock-inversion"
        assert "'A' acquired while holding 'B'" in finding.detail
        assert "opposite order was recorded at" in finding.detail

    def test_strict_mode_raises_at_the_site(self):
        rec = _Recorder(strict=True)
        a, b = _locks(rec, "A", "B")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(RaceError, match="lock-inversion"):
                a.acquire()

    def test_reacquiring_same_label_is_not_an_inversion(self, rec):
        (a,) = _locks(rec, "A")
        other = TrackedLock(threading.Lock(), "A", rec)
        with a:
            with other:  # same label: rlock-style pattern, no edge
                pass
        assert rec.findings == []

    def test_release_pops_held_stack(self, rec):
        a, b = _locks(rec, "A", "B")
        with a:
            pass
        with b:
            assert rec.holds("B")
            assert not rec.holds("A")  # released; no edge B->A implied
            with a:
                pass
        # only A->? edges: (B, A) from the nested acquire
        assert ("A", "B") not in rec.edges
        assert ("B", "A") in rec.edges
        assert rec.findings == []

    def test_locked_surface_passthrough(self, rec):
        (a,) = _locks(rec, "A")
        assert a.locked() is False
        with a:
            assert a.locked() is True
        assert a.label == "A"


class TestGuardedDicts:
    def test_unlocked_write_recorded(self, rec):
        d = GuardedDict({}, "guard", "shared.d", rec)
        d["k"] = 1
        assert len(rec.findings) == 1
        finding = rec.findings[0]
        assert finding.kind == "unlocked-write"
        assert "__setitem__('k')" in finding.detail
        assert "shared.d" in finding.detail
        assert d["k"] == 1  # the write itself still lands

    def test_write_under_guard_is_clean(self, rec):
        (guard,) = _locks(rec, "guard")
        d = GuardedDict({}, "guard", "shared.d", rec)
        with guard:
            d["k"] = 1
            d.update(other=2)
            d.setdefault("third", 3)
            del d["other"]
            d.pop("third")
        assert rec.findings == []

    def test_every_mutating_op_is_checked(self, rec):
        d = GuardedDict({"a": 1, "b": 2}, "guard", "d", rec)
        d.update(c=3)
        d.setdefault("e", 5)
        d.pop("a")
        d.popitem()
        del d["b"]
        d.clear()
        ops = [f.detail.split("(")[0] for f in rec.findings]
        assert ops == [
            "update", "setdefault", "pop", "popitem",
            "__delitem__", "clear",
        ]

    def test_reads_are_never_checked(self, rec):
        (guard,) = _locks(rec, "guard")
        with guard:
            d = GuardedDict({"a": 1}, "guard", "d", rec)
        assert d.get("a") == 1
        assert "a" in d
        assert list(d.items()) == [("a", 1)]
        assert rec.findings == []

    def test_ordered_dict_bootstrap_is_silent(self, rec):
        # OrderedDict.__init__ feeds the seed data through __setitem__
        # before the guard attributes exist; that must not crash or emit
        od = GuardedOrderedDict({"a": 1, "b": 2}, "guard", "od", rec)
        assert rec.findings == []
        od.move_to_end("a")
        assert [f.kind for f in rec.findings] == ["unlocked-write"]
        assert "move_to_end('a')" in rec.findings[0].detail
        assert list(od) == ["b", "a"]

    def test_ordered_dict_under_guard_is_clean(self, rec):
        (guard,) = _locks(rec, "guard")
        od = GuardedOrderedDict({"a": 1}, "guard", "od", rec)
        with guard:
            od["b"] = 2
            od.move_to_end("a")
            od.popitem(last=False)
        assert rec.findings == []

    def test_strict_mode_raises_on_unlocked_write(self):
        rec = _Recorder(strict=True)
        d = GuardedDict({}, "guard", "d", rec)
        with pytest.raises(RaceError, match="unlocked-write"):
            d["k"] = 1


class TestThreads:
    def test_held_stacks_are_thread_local(self, rec):
        a, b = _locks(rec, "A", "B")
        seen_in_thread = []

        def other():
            seen_in_thread.append(rec.holds("A"))
            with b:
                pass

        with a:
            t = threading.Thread(target=other)
            t.start()
            t.join()
        # the other thread never held A, so no A->B edge exists
        assert seen_in_thread == [False]
        assert ("A", "B") not in rec.edges
        assert rec.findings == []


class TestInstallFromEnv:
    @pytest.mark.parametrize("value", ["", "0", "off", "false", "OFF"])
    def test_dormant_values_do_not_install(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_RACE_CHECK", value)
        assert install_from_env() is None

    def test_unset_is_dormant(self, monkeypatch):
        monkeypatch.delenv("REPRO_RACE_CHECK", raising=False)
        assert install_from_env() is None
