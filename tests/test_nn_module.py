"""Unit tests for Module/Parameter plumbing."""

import numpy as np
import pytest

from repro.nn.containers import Sequential
from repro.nn.layers import BatchNorm2d, Conv2d, ReLU
from repro.nn.module import Module, Parameter


class TestParameter:
    def test_grad_starts_zero(self):
        p = Parameter(np.ones((2, 2)), name="w")
        assert np.all(p.grad == 0.0)
        assert p.shape == (2, 2)
        assert p.size == 4

    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        p.grad += 5.0
        p.zero_grad()
        assert np.all(p.grad == 0.0)


class TestDiscovery:
    def test_parameters_recursive(self, rng):
        model = Sequential(
            Conv2d(2, 3, 3, rng=rng), ReLU(), Sequential(Conv2d(3, 1, 1, rng=rng))
        )
        params = model.parameters()
        # conv1 w+b, conv2 w+b
        assert len(params) == 4

    def test_parameters_in_lists(self, rng):
        class Holder(Module):
            def __init__(self):
                super().__init__()
                self.layers = [Conv2d(1, 1, 1, rng=rng), Conv2d(1, 1, 1, rng=rng)]

        assert len(Holder().parameters()) == 4

    def test_num_parameters(self, rng):
        conv = Conv2d(2, 3, 3, bias=True, rng=rng)
        assert conv.num_parameters() == 2 * 3 * 9 + 3

    def test_zero_grad_recursive(self, rng):
        model = Sequential(Conv2d(2, 2, 3, rng=rng))
        x = rng.standard_normal((1, 2, 4, 4))
        model.backward(np.ones_like(model(x)))
        assert any((p.grad != 0).any() for p in model.parameters())
        model.zero_grad()
        assert all((p.grad == 0).all() for p in model.parameters())

    def test_train_eval_recursive(self, rng):
        model = Sequential(BatchNorm2d(2), Sequential(BatchNorm2d(2)))
        model.eval()
        assert not model.modules[0].training
        assert not model.modules[1].modules[0].training
        model.train()
        assert model.modules[0].training


class TestStateDict:
    def test_roundtrip(self, rng):
        a = Sequential(Conv2d(2, 3, 3, rng=np.random.default_rng(1)), ReLU())
        b = Sequential(Conv2d(2, 3, 3, rng=np.random.default_rng(2)), ReLU())
        x = rng.standard_normal((1, 2, 4, 4))
        assert not np.allclose(a(x), b(x))
        b.load_state_dict(a.state_dict())
        assert np.allclose(a(x), b(x))

    def test_names_are_paths(self, rng):
        model = Sequential(Conv2d(2, 3, 3, rng=rng))
        names = set(model.state_dict())
        assert names == {"modules.0.weight", "modules.0.bias"}

    def test_missing_key_rejected(self, rng):
        model = Sequential(Conv2d(2, 3, 3, rng=rng))
        state = model.state_dict()
        state.pop("modules.0.bias")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_rejected(self, rng):
        model = Sequential(Conv2d(2, 3, 3, rng=rng))
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_rejected(self, rng):
        model = Sequential(Conv2d(2, 3, 3, rng=rng))
        state = model.state_dict()
        state["modules.0.bias"] = np.zeros(99)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_loaded_copy_is_independent(self, rng):
        a = Sequential(Conv2d(2, 3, 3, rng=rng))
        state = a.state_dict()
        state["modules.0.bias"][:] = 123.0
        assert not np.any(a.state_dict()["modules.0.bias"] == 123.0)
