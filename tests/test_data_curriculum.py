"""Unit tests for predefined curriculum learning."""

import pytest

from repro.data.curriculum import EASY, HARD, CurriculumScheduler, difficulty_of
from repro.data.dataset import IRDropDataset


class TestDifficultyMeasurer:
    def test_fake_is_easy(self, fake_sample):
        assert difficulty_of(fake_sample) == EASY

    def test_real_is_hard(self, real_sample):
        assert difficulty_of(real_sample) == HARD


class TestScheduler:
    def test_hard_fraction_ramp(self):
        scheduler = CurriculumScheduler(
            total_epochs=10, hard_start_epoch=2, hard_full_epoch=6
        )
        assert scheduler.hard_fraction(0) == 0.0
        assert scheduler.hard_fraction(1) == 0.0
        assert scheduler.hard_fraction(4) == pytest.approx(0.5)
        assert scheduler.hard_fraction(6) == 1.0
        assert scheduler.hard_fraction(99) == 1.0

    def test_default_endpoints(self):
        scheduler = CurriculumScheduler(total_epochs=10)
        assert scheduler.hard_fraction(0) == 0.0
        assert scheduler.hard_fraction(9) == 1.0

    def test_early_epoch_excludes_hard(self, tiny_dataset):
        scheduler = CurriculumScheduler(
            total_epochs=10, hard_start_epoch=5, hard_full_epoch=8
        )
        subset = scheduler.subset(tiny_dataset, epoch=0)
        assert all(s.is_fake for s in subset)

    def test_late_epoch_includes_all(self, tiny_dataset):
        scheduler = CurriculumScheduler(total_epochs=10)
        subset = scheduler.subset(tiny_dataset, epoch=9)
        assert len(subset) == len(tiny_dataset)

    def test_subsets_are_nested(self, fake_sample, real_sample):
        dataset = IRDropDataset(
            [fake_sample, real_sample, real_sample, real_sample]
        )
        scheduler = CurriculumScheduler(
            total_epochs=6, hard_start_epoch=1, hard_full_epoch=4
        )
        previous: set[int] = set()
        for epoch in range(6):
            current = set(scheduler.subset_indices(dataset, epoch))
            assert previous.issubset(current)
            previous = current

    def test_never_empty_even_all_hard(self, real_sample):
        dataset = IRDropDataset([real_sample, real_sample])
        scheduler = CurriculumScheduler(
            total_epochs=10, hard_start_epoch=5, hard_full_epoch=8
        )
        assert len(scheduler.subset_indices(dataset, 0)) >= 1

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            CurriculumScheduler(total_epochs=0)
        with pytest.raises(ValueError):
            CurriculumScheduler(
                total_epochs=5, hard_start_epoch=4, hard_full_epoch=2
            )
