"""Property and unit tests for the incremental ECO re-solve engine.

The central invariant: any sequence of :class:`GridDelta` edits applied
through :class:`IncrementalEngine` must produce the same IR drop as
restamping the mutated grid from scratch and solving to convergence —
regardless of whether the engine answered via Sherman–Morrison–Woodbury
corrections, warm starts, or a threshold-triggered full rebuild.
"""

import numpy as np
import pytest
import scipy.sparse.linalg as spla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import DesignSpec, generate_design
from repro.mna.stamper import build_reduced_system
from repro.obs import deadline_scope
from repro.solvers.incremental import (
    AddPad,
    IncrementalAnalyzer,
    IncrementalEngine,
    IncrementalOptions,
    RemovePad,
    ReviseLoads,
    ScaleWire,
    SetWireResistance,
)


def _small_grid():
    spec = DesignSpec(
        name="eco", kind="fake", pixels=12, num_layers=2,
        supply_voltage=1.0, total_current=0.4, num_pads=4, seed=11,
    )
    return generate_design(spec).grid


#: One grid for the whole module — the engine clones it, tests mutate clones.
GRID = _small_grid()
SUPPLY = 1.0


def reference_drops(grid):
    """From-scratch ground truth: restamp + sparse direct solve."""
    system = build_reduced_system(grid)
    x = spla.spsolve(system.matrix.tocsc(), system.rhs)
    return SUPPLY - system.scatter(x)


def _free_nodes(grid):
    return [n.index for n in grid.nodes if not n.is_pad]


def _load_nodes(grid):
    return [n.index for n in grid.loads()]


@st.composite
def delta_programs(draw):
    """A short random ECO program: list of (kind, payload) instructions.

    Node/wire identities are drawn as indices into the *current* pools so
    every program is valid by construction (no double pins, no pad loads).
    """
    length = draw(st.integers(min_value=1, max_value=6))
    program = []
    for _ in range(length):
        kind = draw(st.sampled_from(
            ["add_pad", "remove_added_pad", "scale_wire", "set_wire", "loads"]
        ))
        payload = {
            "pick": draw(st.integers(min_value=0, max_value=10**6)),
            "factor": draw(st.floats(min_value=0.25, max_value=4.0)),
            "amps": draw(st.floats(min_value=-0.002, max_value=0.002)),
        }
        program.append((kind, payload))
    return program


#: Both base-solve tiers must satisfy every invariant: "direct" factors
#: G0 once (exact columns), "iterative" is the AMG-PCG fallback used for
#: oversized systems (forced here via a zero threshold).
TIERS = {
    "direct": IncrementalOptions(max_rank=16),
    "iterative": IncrementalOptions(max_rank=16, direct_max_size=0),
}


class TestDeltaSequencesMatchFromScratch:
    @pytest.mark.parametrize("tier", sorted(TIERS))
    @given(program=delta_programs())
    @settings(max_examples=10, deadline=None)
    def test_incremental_matches_reference(self, tier, program):
        engine = IncrementalEngine(GRID, SUPPLY, incremental=TIERS[tier])
        shadow = GRID.clone()  # mutated in lockstep, solved from scratch
        added_pads: list[int] = []

        for kind, payload in program:
            pick, factor, amps = (
                payload["pick"], payload["factor"], payload["amps"],
            )
            if kind == "add_pad":
                pool = [i for i in _free_nodes(shadow)]
                if not pool:
                    continue
                node = pool[pick % len(pool)]
                if shadow.node(node).load_current != 0.0:
                    continue  # keep pinned nodes load-free for clarity
                engine.apply(AddPad(node))
                shadow.pin_pad(node, SUPPLY)
                added_pads.append(node)
            elif kind == "remove_added_pad":
                if not added_pads:
                    continue
                node = added_pads.pop(pick % len(added_pads))
                engine.apply(RemovePad(node))
                shadow.unpin_pad(node)
            elif kind == "scale_wire":
                wire = pick % shadow.num_wires
                engine.apply(ScaleWire(wire, factor))
                shadow.set_wire_resistance(
                    wire, shadow.wires[wire].resistance * factor
                )
            elif kind == "set_wire":
                wire = pick % shadow.num_wires
                resistance = shadow.wires[wire].resistance * factor + 1e-4
                engine.apply(SetWireResistance(wire, resistance))
                shadow.set_wire_resistance(wire, resistance)
            else:
                pool = [
                    i for i in _load_nodes(shadow)
                    if not shadow.node(i).is_pad
                ]
                if not pool:
                    continue
                node = pool[pick % len(pool)]
                engine.apply(ReviseLoads.of({node: amps}, additive=True))
                shadow.set_load(
                    node, shadow.node(node).load_current + amps
                )

            step = engine.solve()
            assert step.converged
            np.testing.assert_allclose(
                step.drops, reference_drops(shadow), atol=1e-6
            )

    @given(factor=st.floats(min_value=0.5, max_value=2.0))
    @settings(max_examples=10, deadline=None)
    def test_preview_leaves_state_untouched(self, factor):
        engine = IncrementalEngine(GRID, SUPPLY)
        before = engine.solve()
        engine.preview(ScaleWire(0, factor))
        after = engine.solve()
        np.testing.assert_allclose(after.drops, before.drops, atol=1e-8)
        assert engine.rank == 0


class TestRebuildBoundary:
    def test_rank_budget_triggers_rebuild_and_stays_correct(self):
        engine = IncrementalEngine(
            GRID, SUPPLY, incremental=IncrementalOptions(max_rank=2)
        )
        engine.solve()
        shadow = GRID.clone()
        free = [
            i for i in _free_nodes(shadow)
            if shadow.node(i).load_current == 0.0
        ]
        strategies = []
        for node in free[:3]:  # rank 6 > budget 2 after the second pad
            engine.apply(AddPad(node))
            shadow.pin_pad(node, SUPPLY)
            step = engine.solve()
            strategies.append(step.strategy)
            np.testing.assert_allclose(
                step.drops, reference_drops(shadow), atol=1e-6
            )
        assert "rebuild" in strategies
        # The rebuild absorbed the over-budget terms into a fresh base;
        # edits committed after it accumulate rank again from zero.
        assert engine.rank <= engine.incremental.max_rank

    def test_structural_removal_forces_rebuild(self):
        engine = IncrementalEngine(GRID, SUPPLY)
        engine.solve()
        shadow = GRID.clone()
        original_pad = shadow.pads()[0].index
        engine.apply(RemovePad(original_pad))
        shadow.unpin_pad(original_pad)
        step = engine.solve()
        assert step.strategy == "rebuild"
        np.testing.assert_allclose(
            step.drops, reference_drops(shadow), atol=1e-6
        )

    def test_add_then_remove_is_exact_reversal(self):
        engine = IncrementalEngine(GRID, SUPPLY)
        baseline = engine.solve()
        node = next(
            i for i in _free_nodes(GRID)
            if GRID.node(i).load_current == 0.0
        )
        engine.apply(AddPad(node))
        engine.apply(RemovePad(node))
        step = engine.solve()
        assert engine.rank == 0
        np.testing.assert_allclose(step.drops, baseline.drops, atol=1e-8)


class TestEngineContracts:
    def test_caller_grid_never_mutated(self):
        pads_before = len(GRID.pads())
        engine = IncrementalEngine(GRID, SUPPLY)
        node = _free_nodes(GRID)[0]
        engine.apply(ScaleWire(0, 2.0))
        if GRID.node(node).load_current == 0.0:
            engine.apply(AddPad(node))
        assert len(GRID.pads()) == pads_before
        assert GRID.wires[0].resistance == engine.grid.wires[0].resistance / 2.0

    def test_revert_requires_lifo(self):
        engine = IncrementalEngine(GRID, SUPPLY)
        first = engine.apply(ScaleWire(0, 2.0))
        engine.apply(ScaleWire(1, 2.0))
        with pytest.raises(ValueError):
            engine.revert(first)

    def test_fingerprint_chains_and_rewinds(self):
        engine = IncrementalEngine(GRID, SUPPLY)
        fp0 = engine.fingerprint
        term = engine.apply(ScaleWire(0, 2.0))
        fp1 = engine.fingerprint
        assert fp1 != fp0
        engine.revert(term)
        assert engine.fingerprint == fp0
        engine.apply(ScaleWire(0, 2.0))
        assert engine.fingerprint == fp1  # same edit → same chain key

    def test_double_pin_rejected(self):
        engine = IncrementalEngine(GRID, SUPPLY)
        pad = GRID.pads()[0].index
        with pytest.raises(ValueError):
            engine.apply(AddPad(pad))

    def test_invalid_wire_factor_rejected(self):
        with pytest.raises(ValueError):
            ScaleWire(0, -1.0)
        with pytest.raises(ValueError):
            SetWireResistance(0, 0.0)


class TestAnalyzerSatellites:
    """Satellite 1: options passthrough, deadlines, diagnostics."""

    def test_caller_supplied_options_respected(self):
        from repro.solvers.base import SolverOptions

        options = SolverOptions(tol=1e-4, max_iterations=7)
        analyzer = IncrementalAnalyzer(GRID, SUPPLY, options=options)
        assert analyzer.options is options
        step = analyzer.set_loads(
            {n.index: n.load_current * 1.5 for n in GRID.loads()}
        )
        # iterations totals every inner PCG loop; each individual loop
        # (base solve, polish) honours the caller's cap.
        assert step.iterations - step.polish_iterations <= 7

    def test_deadline_scope_aborts_cleanly(self):
        analyzer = IncrementalAnalyzer(GRID, SUPPLY)
        with deadline_scope(1e-9):
            step = analyzer.set_loads(
                {n.index: n.load_current * 2.0 for n in GRID.loads()}
            )
        assert step.aborted == "deadline"
        assert not step.converged

    def test_diagnostics_record_each_step(self):
        analyzer = IncrementalAnalyzer(GRID, SUPPLY)
        analyzer.set_loads({n.index: n.load_current for n in GRID.loads()})
        analyzer.update_loads({GRID.loads()[0].index: 1e-4})
        notes = analyzer.diagnostics.warnings
        assert len(notes) == 2
        assert "strategy=" in notes[0] and "iterations=" in notes[0]
