"""Unit tests for geometry and the pixel mapping."""

import pytest

from repro.grid.geometry import (
    GridGeometry,
    LayerInfo,
    default_layer_stack,
    infer_geometry,
)
from repro.spice.nodes import NodeName


def make_geometry(pixels=16, pixel_nm=1000, layers=3):
    return GridGeometry(
        width_nm=pixels * pixel_nm,
        height_nm=pixels * pixel_nm,
        pixel_w_nm=pixel_nm,
        pixel_h_nm=pixel_nm,
        layers=default_layer_stack(layers, base_pitch_nm=pixel_nm),
    )


class TestLayerInfo:
    def test_bad_direction(self):
        with pytest.raises(ValueError):
            LayerInfo(index=1, pitch_nm=100, direction="x")

    def test_bad_pitch(self):
        with pytest.raises(ValueError):
            LayerInfo(index=1, pitch_nm=0, direction="h")


class TestGridGeometry:
    def test_shape(self):
        geometry = make_geometry(pixels=16)
        assert geometry.shape == (16, 16)

    def test_to_pixel_maps_floor_division(self):
        geometry = make_geometry()
        assert geometry.to_pixel(0, 0) == (0, 0)
        assert geometry.to_pixel(999, 999) == (0, 0)
        assert geometry.to_pixel(1000, 0) == (0, 1)
        assert geometry.to_pixel(0, 1000) == (1, 0)

    def test_to_pixel_clamps(self):
        geometry = make_geometry(pixels=4)
        assert geometry.to_pixel(10**9, 10**9) == (3, 3)
        assert geometry.to_pixel(-5, -5) == (0, 0)

    def test_node_pixel(self):
        geometry = make_geometry()
        assert geometry.node_pixel(NodeName(1, 1, 2000, 3000)) == (3, 2)

    def test_pixel_center_roundtrip(self):
        geometry = make_geometry()
        x, y = geometry.pixel_center_nm(3, 5)
        assert geometry.to_pixel(int(x), int(y)) == (3, 5)

    def test_contains(self):
        geometry = make_geometry(pixels=4)
        assert geometry.contains(0, 0)
        assert not geometry.contains(4000, 0)

    def test_layer_lookup(self):
        geometry = make_geometry(layers=3)
        assert geometry.layer(2).index == 2
        with pytest.raises(KeyError):
            geometry.layer(9)

    def test_invalid_extents(self):
        with pytest.raises(ValueError):
            GridGeometry(width_nm=0, height_nm=10, pixel_w_nm=1, pixel_h_nm=1)


class TestDefaultLayerStack:
    def test_alternating_directions(self):
        stack = default_layer_stack(4)
        assert [l.direction for l in stack] == ["h", "v", "h", "v"]

    def test_pitch_doubles(self):
        stack = default_layer_stack(3, base_pitch_nm=1000)
        assert [l.pitch_nm for l in stack] == [1000, 2000, 4000]

    def test_sheet_resistance_halves(self):
        stack = default_layer_stack(3)
        assert stack[1].sheet_resistance == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            default_layer_stack(0)


class TestInferGeometry:
    def test_infer_matches_design(self, fake_design):
        inferred = infer_geometry(fake_design.grid, align_pixels=8)
        assert inferred.shape == fake_design.geometry.shape
        assert [l.index for l in inferred.layers] == [1, 2, 3]

    def test_infer_directions(self, fake_design):
        inferred = infer_geometry(fake_design.grid, align_pixels=8)
        truth = {l.index: l.direction for l in fake_design.geometry.layers}
        # layer 1 carries taps in both axes; upper layers must match
        for info in inferred.layers:
            if info.index >= 2:
                assert info.direction == truth[info.index]

    def test_alignment(self, fake_design):
        inferred = infer_geometry(fake_design.grid, align_pixels=8)
        rows, cols = inferred.shape
        assert rows % 8 == 0 and cols % 8 == 0
