"""Unit/integration tests for the PowerRush simulator facade."""

import numpy as np
import pytest

from repro.solvers.direct import DirectSolver
from repro.mna.stamper import build_reduced_system
from repro.solvers.powerrush import PowerRushSimulator
from repro.spice.writer import netlist_to_string


class TestSimulate:
    def test_simulate_text_matches_direct(self, fake_design):
        text = netlist_to_string(fake_design.netlist)
        report = PowerRushSimulator(tol=1e-12).simulate_text(text)
        system = build_reduced_system(fake_design.grid)
        golden = system.scatter(DirectSolver().solve(system.matrix, system.rhs).x)
        assert np.allclose(report.voltages, golden, atol=1e-8)

    def test_simulate_file(self, tmp_path, fake_design):
        path = tmp_path / "design.sp"
        path.write_text(netlist_to_string(fake_design.netlist))
        report = PowerRushSimulator().simulate_file(path)
        assert report.grid.num_nodes == fake_design.grid.num_nodes

    def test_ir_drop_non_negative_at_convergence(self, fake_design):
        report = PowerRushSimulator(tol=1e-12).simulate_grid(fake_design.grid)
        assert report.ir_drop.min() > -1e-9

    def test_pads_have_zero_drop(self, fake_design):
        report = PowerRushSimulator(tol=1e-12).simulate_grid(fake_design.grid)
        for pad in fake_design.grid.pads():
            assert report.ir_drop[pad.index] == pytest.approx(0.0, abs=1e-12)

    def test_worst_drop_positive(self, fake_design):
        report = PowerRushSimulator(tol=1e-12).simulate_grid(fake_design.grid)
        assert report.worst_drop() > 0

    def test_iteration_cap_respected(self, fake_design):
        report = PowerRushSimulator(max_iterations=2, tol=1e-16).simulate_grid(
            fake_design.grid
        )
        assert report.solve.iterations == 2

    def test_more_iterations_more_accurate(self, fake_design):
        golden = PowerRushSimulator(tol=1e-12).simulate_grid(fake_design.grid)
        errors = []
        for budget in (1, 4):
            rough = PowerRushSimulator(
                max_iterations=budget, tol=1e-16
            ).simulate_grid(fake_design.grid)
            errors.append(np.abs(rough.voltages - golden.voltages).mean())
        assert errors[1] < errors[0]

    def test_drop_image_shape(self, fake_design):
        report = PowerRushSimulator().simulate_grid(fake_design.grid)
        image = report.drop_image(fake_design.geometry)
        assert image.shape == fake_design.geometry.shape
        assert image.max() == pytest.approx(
            max(
                report.ir_drop[n.index]
                for n in fake_design.grid.nodes_on_layer(1)
            )
        )

    def test_layer_drop_images(self, fake_design):
        report = PowerRushSimulator().simulate_grid(fake_design.grid)
        images = report.layer_drop_images(fake_design.geometry)
        assert sorted(images) == fake_design.grid.layers_present()
        # drops shrink toward the top (closer to pads)
        assert images[1].max() >= images[3].max()

    def test_supply_voltage_inferred(self, fake_design):
        report = PowerRushSimulator().simulate_grid(fake_design.grid)
        assert report.supply_voltage == fake_design.spec.supply_voltage

    def test_kirchhoff_current_balance(self, fake_design):
        """Pad inflow equals total load current (KCL sanity)."""
        report = PowerRushSimulator(tol=1e-13).simulate_grid(fake_design.grid)
        grid = fake_design.grid
        inflow = 0.0
        for pad in grid.pads():
            for wire in grid.wires_at(pad.index):
                other = wire.other(pad.index)
                inflow += (
                    report.voltages[pad.index] - report.voltages[other]
                ) * wire.conductance
        assert inflow == pytest.approx(grid.total_load_current(), rel=1e-6)


class TestPresets:
    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            PowerRushSimulator(preset="turbo")

    def test_fast_preset_converges_slower_per_iteration(self, fake_design):
        quality = PowerRushSimulator(
            max_iterations=3, tol=1e-16, preset="quality"
        ).simulate_grid(fake_design.grid)
        fast = PowerRushSimulator(
            max_iterations=3, tol=1e-16, preset="fast"
        ).simulate_grid(fake_design.grid)
        golden = PowerRushSimulator(tol=1e-12).simulate_grid(fake_design.grid)
        err_quality = np.abs(quality.voltages - golden.voltages).mean()
        err_fast = np.abs(fast.voltages - golden.voltages).mean()
        assert err_fast > err_quality

    def test_fast_preset_still_converges_eventually(self, fake_design):
        report = PowerRushSimulator(tol=1e-10, preset="fast").simulate_grid(
            fake_design.grid
        )
        assert report.solve.converged

    def test_flat_initial_guess_zero_iterations(self, fake_design):
        """With 0 iterations the report is exactly the flat v=vdd guess."""
        report = PowerRushSimulator(
            max_iterations=0, tol=1e-16
        ).simulate_grid(fake_design.grid)
        assert np.allclose(report.ir_drop, 0.0)

    def test_flat_start_one_iteration_beats_nothing(self, fake_design):
        """One iteration from the flat guess already orders the drops."""
        golden = PowerRushSimulator(tol=1e-12).simulate_grid(fake_design.grid)
        rough = PowerRushSimulator(max_iterations=1, tol=1e-16).simulate_grid(
            fake_design.grid
        )
        correlation = np.corrcoef(rough.ir_drop, golden.ir_drop)[0, 1]
        assert correlation > 0.8
