"""Tests for the additive-Schwarz domain-decomposition preconditioner."""

import numpy as np
import pytest

from repro.mna.stamper import build_reduced_system
from repro.solvers.base import SolverOptions
from repro.solvers.cg import CGSolver
from repro.solvers.schwarz import (
    AdditiveSchwarzPreconditioner,
    SchwarzPCGSolver,
    partition_blocks,
)


@pytest.fixture(scope="module")
def system(fake_design):
    return build_reduced_system(fake_design.grid)


class TestPartition:
    def test_blocks_cover_all_rows(self, system):
        blocks = partition_blocks(system.matrix, num_blocks=4, overlap=1)
        covered = set()
        for block in blocks:
            covered.update(block.tolist())
        assert covered == set(range(system.size))

    def test_overlap_grows_blocks(self, system):
        tight = partition_blocks(system.matrix, num_blocks=4, overlap=0)
        loose = partition_blocks(system.matrix, num_blocks=4, overlap=2)
        assert sum(b.size for b in loose) > sum(b.size for b in tight)

    def test_single_block_is_everything(self, system):
        blocks = partition_blocks(system.matrix, num_blocks=1)
        assert blocks[0].size == system.size

    def test_invalid_block_count(self, system):
        with pytest.raises(ValueError):
            partition_blocks(system.matrix, num_blocks=0)


class TestPreconditioner:
    def test_apply_is_linear(self, system, rng):
        preconditioner = AdditiveSchwarzPreconditioner(system.matrix, 4)
        a = rng.standard_normal(system.size)
        b = rng.standard_normal(system.size)
        combined = preconditioner.apply(2 * a + 3 * b)
        separate = 2 * preconditioner.apply(a) + 3 * preconditioner.apply(b)
        assert np.allclose(combined, separate, atol=1e-10)

    def test_apply_is_symmetric(self, system, rng):
        """<M^{-1}a, b> == <a, M^{-1}b>: required for plain PCG."""
        preconditioner = AdditiveSchwarzPreconditioner(system.matrix, 4)
        a = rng.standard_normal(system.size)
        b = rng.standard_normal(system.size)
        lhs = float(preconditioner.apply(a) @ b)
        rhs = float(a @ preconditioner.apply(b))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_single_block_is_exact_inverse(self, system, rng):
        preconditioner = AdditiveSchwarzPreconditioner(system.matrix, 1)
        r = rng.standard_normal(system.size)
        x = preconditioner.apply(r)
        assert np.allclose(system.matrix @ x, r, atol=1e-8)


class TestSchwarzPCG:
    def test_converges(self, system):
        solver = SchwarzPCGSolver(SolverOptions(tol=1e-10), num_blocks=4)
        result = solver.solve(system.matrix, system.rhs)
        assert result.converged
        assert system.relative_residual(result.x) < 1e-9

    def test_fewer_iterations_than_plain_cg(self, system):
        options = SolverOptions(tol=1e-10, max_iterations=5000)
        plain = CGSolver(options).solve(system.matrix, system.rhs)
        schwarz = SchwarzPCGSolver(options, num_blocks=4, overlap=1).solve(
            system.matrix, system.rhs
        )
        assert schwarz.converged
        assert schwarz.iterations < plain.iterations

    def test_preconditioner_cached(self, system):
        solver = SchwarzPCGSolver(SolverOptions(tol=1e-8), num_blocks=4)
        solver.solve(system.matrix, system.rhs)
        first = solver._cached_preconditioner
        solver.solve(system.matrix, system.rhs)
        assert solver._cached_preconditioner is first
