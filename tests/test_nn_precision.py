"""Tests for the mixed-precision compute path (fp64 master weights,
fp32 kernels) and its agreement with the fp64 reference kernels."""

import numpy as np
import pytest

from repro.nn.layers import BatchNorm2d, Conv2d
from repro.nn.module import Parameter
from repro.nn.optim import Adam
from repro.models import IRFusionNet


def tiny_model(seed=0):
    return IRFusionNet(in_channels=3, base_channels=4, depth=2, seed=seed)


def fp32_twin(model_fp64, seed=0):
    twin = tiny_model(seed=seed)
    twin.load_state_dict(model_fp64.state_dict())
    twin.set_compute_dtype(np.float32)
    return twin


class TestParameterPrecision:
    def test_master_data_stays_float64(self):
        p = Parameter(np.ones((2, 3), dtype=np.float32))
        assert p.data.dtype == np.float64
        p.set_compute_dtype(np.float32)
        assert p.data.dtype == np.float64
        assert p.compute.dtype == np.float32

    def test_fp64_compute_is_the_master_array(self):
        p = Parameter(np.ones(4))
        assert p.compute is p.data  # zero-overhead default

    def test_compute_cache_reused_until_synced(self):
        p = Parameter(np.arange(4.0))
        p.set_compute_dtype(np.float32)
        first = p.compute
        assert p.compute is first
        p.data[...] = 7.0
        assert p.compute is first  # stale until told otherwise
        p.sync_compute()
        np.testing.assert_array_equal(p.compute, np.full(4, 7.0, np.float32))

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(ValueError, match="compute dtype"):
            Parameter(np.ones(2)).set_compute_dtype(np.int32)

    def test_adam_step_refreshes_compute(self):
        p = Parameter(np.ones(3))
        p.set_compute_dtype(np.float32)
        _ = p.compute
        p.grad[...] = 1.0
        Adam([p], lr=0.1).step()
        np.testing.assert_allclose(p.compute, p.data.astype(np.float32))

    def test_load_state_dict_refreshes_compute(self):
        model = tiny_model()
        model.set_compute_dtype(np.float32)
        x = np.random.default_rng(0).standard_normal((1, 3, 8, 8)).astype(
            np.float32
        )
        model(x)  # populate the compute caches
        state = {k: v + 1.0 for k, v in model.state_dict().items()}
        model.load_state_dict(state)
        for _, parameter in model.named_parameters():
            np.testing.assert_array_equal(
                parameter.compute, parameter.data.astype(np.float32)
            )


class TestModelPrecision:
    def test_forward_dtype_follows_input(self):
        model = tiny_model()
        rng = np.random.default_rng(1)
        x64 = rng.standard_normal((2, 3, 16, 16))
        assert model(x64).dtype == np.float64
        model.set_compute_dtype(np.float32)
        assert model(x64.astype(np.float32)).dtype == np.float32

    def test_grads_accumulate_in_float64(self):
        model = tiny_model()
        model.set_compute_dtype(np.float32)
        rng = np.random.default_rng(2)
        x = rng.standard_normal((2, 3, 16, 16)).astype(np.float32)
        out = model(x)
        model.backward(np.ones_like(out))
        for _, parameter in model.named_parameters():
            assert parameter.grad.dtype == np.float64

    def test_fp32_forward_close_to_fp64(self):
        model = tiny_model()
        twin = fp32_twin(model)
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 3, 16, 16))
        np.testing.assert_allclose(
            twin(x.astype(np.float32)), model(x), rtol=1e-4, atol=1e-5
        )

    def test_fp32_gradients_close_to_fp64(self):
        model = tiny_model()
        twin = fp32_twin(model)
        rng = np.random.default_rng(4)
        x = rng.standard_normal((2, 3, 16, 16))
        out64 = model(x)
        model.backward(np.ones_like(out64))
        out32 = twin(x.astype(np.float32))
        twin.backward(np.ones_like(out32))
        ref = dict(model.named_parameters())
        for name, parameter in twin.named_parameters():
            scale = max(np.abs(ref[name].grad).max(), 1.0)
            np.testing.assert_allclose(
                parameter.grad, ref[name].grad, atol=2e-4 * scale, err_msg=name
            )


class TestConvPrecision:
    @pytest.mark.parametrize("kernel,padding", [(3, "same"), (1, 0), ((1, 7), "same")])
    def test_backward_fast_path_matches_fp64(self, kernel, padding):
        rng = np.random.default_rng(5)
        conv64 = Conv2d(4, 6, kernel, padding=padding, rng=np.random.default_rng(9))
        conv32 = Conv2d(4, 6, kernel, padding=padding, rng=np.random.default_rng(9))
        conv32.load_state_dict(conv64.state_dict())
        conv32.set_compute_dtype(np.float32)
        x = rng.standard_normal((2, 4, 12, 12))
        out64 = conv64(x)
        conv32(x.astype(np.float32))
        g = rng.standard_normal(out64.shape)
        grad64 = conv64.backward(g)
        grad32 = conv32.backward(g.astype(np.float32))
        # The fp32 path computes backward-data as a correlation GEMM
        # instead of the col2im scatter; same operator, different order.
        np.testing.assert_allclose(grad32, grad64, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(
            conv32.weight.grad, conv64.weight.grad, rtol=1e-4, atol=1e-4
        )


class TestBatchNormPrecision:
    def _pair(self):
        bn64 = BatchNorm2d(5)
        bn32 = BatchNorm2d(5)
        bn64.gamma.data[...] = np.linspace(0.5, 1.5, 5)
        bn64.beta.data[...] = np.linspace(-0.2, 0.2, 5)
        bn32.load_state_dict(bn64.state_dict())
        bn32.set_compute_dtype(np.float32)
        return bn64, bn32

    def test_train_mode_matches_fp64(self):
        bn64, bn32 = self._pair()
        rng = np.random.default_rng(6)
        x = rng.standard_normal((3, 5, 8, 8)) * 2.0 + 1.0
        np.testing.assert_allclose(
            bn32(x.astype(np.float32)), bn64(x), rtol=1e-4, atol=1e-5
        )
        g = rng.standard_normal(x.shape)
        # The fp32 backward folds the input gradient into one per-channel
        # affine form; it must still agree with the fp64 reference order.
        np.testing.assert_allclose(
            bn32.backward(g.astype(np.float32)),
            bn64.backward(g),
            rtol=1e-3,
            atol=1e-5,
        )
        np.testing.assert_allclose(bn32.gamma.grad, bn64.gamma.grad, rtol=1e-4)
        np.testing.assert_allclose(bn32.beta.grad, bn64.beta.grad, rtol=1e-4)

    def test_eval_mode_matches_fp64(self):
        bn64, bn32 = self._pair()
        rng = np.random.default_rng(7)
        # Train once so the running buffers are non-trivial, then compare
        # the eval-mode scale-and-shift in both precisions.
        warm = rng.standard_normal((3, 5, 8, 8))
        bn64(warm)
        bn32(warm.astype(np.float32))
        bn64.eval()
        bn32.eval()
        x = rng.standard_normal((2, 5, 8, 8))
        np.testing.assert_allclose(
            bn32(x.astype(np.float32)), bn64(x), rtol=1e-4, atol=1e-5
        )
        g = rng.standard_normal(x.shape)
        np.testing.assert_allclose(
            bn32.backward(g.astype(np.float32)), bn64.backward(g),
            rtol=1e-4, atol=1e-5,
        )
