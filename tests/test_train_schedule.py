"""Unit tests for LR schedules."""

import pytest

from repro.train.schedule import ConstantLR, CosineLR, StepLR


class TestConstant:
    def test_constant(self):
        schedule = ConstantLR(1e-3)
        assert schedule(0) == schedule(100) == 1e-3


class TestStep:
    def test_decay_points(self):
        schedule = StepLR(lr=1.0, step_size=3, gamma=0.5)
        assert schedule(0) == 1.0
        assert schedule(2) == 1.0
        assert schedule(3) == 0.5
        assert schedule(6) == 0.25

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(lr=1.0, step_size=0)(1)


class TestCosine:
    def test_endpoints(self):
        schedule = CosineLR(lr=1.0, total_epochs=10, min_lr=0.1)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(10) == pytest.approx(0.1)

    def test_midpoint(self):
        schedule = CosineLR(lr=1.0, total_epochs=10, min_lr=0.0)
        assert schedule(5) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        schedule = CosineLR(lr=1.0, total_epochs=10)
        values = [schedule(e) for e in range(11)]
        assert values == sorted(values, reverse=True)

    def test_clamped_beyond_total(self):
        schedule = CosineLR(lr=1.0, total_epochs=10, min_lr=0.2)
        assert schedule(50) == pytest.approx(0.2)

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            CosineLR(lr=1.0, total_epochs=0)(0)
