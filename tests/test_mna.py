"""Unit tests for MNA stamping: reduced vs full formulations."""

import numpy as np
import pytest
import scipy.sparse.linalg as sla

from repro.grid.netlist import PowerGrid
from repro.mna.stamper import build_full_mna, build_reduced_system
from repro.spice.parser import parse_spice


class TestReducedSystem:
    def test_sizes(self, tiny_grid):
        system = build_reduced_system(tiny_grid)
        assert system.size == 3  # 4 nodes - 1 pad
        assert system.num_grid_nodes == 4

    def test_matrix_symmetric(self, tiny_grid):
        system = build_reduced_system(tiny_grid)
        dense = system.matrix.toarray()
        assert np.allclose(dense, dense.T)

    def test_matrix_positive_definite(self, tiny_grid):
        system = build_reduced_system(tiny_grid)
        eigenvalues = np.linalg.eigvalsh(system.matrix.toarray())
        assert eigenvalues.min() > 0

    def test_known_solution_hand_computed(self):
        # pad -- 1 ohm -- node with 1 A load: drop = 1 V
        grid = PowerGrid.from_netlist(
            parse_spice("R1 a b 1\nI1 b 0 1.0\nV1 a 0 2.0\n")
        )
        system = build_reduced_system(grid)
        x = sla.spsolve(system.matrix.tocsc(), system.rhs)
        voltages = system.scatter(np.atleast_1d(x))
        assert voltages[grid.index_of("a")] == pytest.approx(2.0)
        assert voltages[grid.index_of("b")] == pytest.approx(1.0)

    def test_scatter_gather_roundtrip(self, tiny_grid):
        system = build_reduced_system(tiny_grid)
        x = np.arange(system.size, dtype=float)
        assert np.array_equal(system.gather(system.scatter(x)), x)

    def test_scatter_sets_pad_voltage(self, tiny_grid):
        system = build_reduced_system(tiny_grid)
        full = system.scatter(np.zeros(system.size))
        pad_index = tiny_grid.pads()[0].index
        assert full[pad_index] == 1.05

    def test_residual_of_exact_solution_is_zero(self, tiny_grid):
        system = build_reduced_system(tiny_grid)
        x = sla.spsolve(system.matrix.tocsc(), system.rhs)
        assert system.relative_residual(np.atleast_1d(x)) < 1e-12

    def test_validation_catches_singular(self):
        grid = PowerGrid.from_netlist(parse_spice("R1 a b 1\nI1 b 0 1\n"))
        with pytest.raises(ValueError):
            build_reduced_system(grid)

    def test_matches_full_mna(self, fake_design):
        grid = fake_design.grid
        reduced = build_reduced_system(grid)
        full = build_full_mna(grid)
        x_reduced = sla.spsolve(reduced.matrix.tocsc(), reduced.rhs)
        voltages_reduced = reduced.scatter(np.atleast_1d(x_reduced))
        x_full = sla.spsolve(full.matrix.tocsc(), full.rhs)
        voltages_full, _ = full.split_solution(np.asarray(x_full))
        assert np.allclose(voltages_reduced, voltages_full, atol=1e-8)


class TestFullMNA:
    def test_branch_current_equals_total_load(self, tiny_grid):
        full = build_full_mna(tiny_grid)
        x = sla.spsolve(full.matrix.tocsc(), full.rhs)
        _, branch_currents = full.split_solution(np.asarray(x))
        # KCL: the single pad supplies all load current (sign: current
        # flows out of the source into the grid)
        assert abs(branch_currents).sum() == pytest.approx(0.015)

    def test_pad_rows_enforce_voltage(self, tiny_grid):
        full = build_full_mna(tiny_grid)
        x = sla.spsolve(full.matrix.tocsc(), full.rhs)
        voltages, _ = full.split_solution(np.asarray(x))
        assert voltages[tiny_grid.pads()[0].index] == pytest.approx(1.05)

    def test_shape(self, tiny_grid):
        full = build_full_mna(tiny_grid)
        assert full.matrix.shape == (5, 5)
        assert full.num_branch_currents == 1
