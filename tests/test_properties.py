"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.functional import col2im, im2col, upsample_nearest_backward, upsample_nearest_forward
from repro.spice.nodes import NodeName, format_node_name, parse_node_name
from repro.spice.parser import parse_spice
from repro.spice.writer import netlist_to_string
from repro.spice.ast import CurrentSource, Netlist, Resistor, VoltageSource
from repro.train.metrics import f1_hotspot, mae

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)

node_names = st.builds(
    format_node_name,
    st.integers(0, 9),
    st.integers(1, 12),
    st.integers(0, 10**7),
    st.integers(0, 10**7),
)


class TestNodeGrammarProperties:
    @given(
        net=st.integers(0, 99),
        layer=st.integers(1, 20),
        x=st.integers(-(10**8), 10**8),
        y=st.integers(-(10**8), 10**8),
    )
    def test_format_parse_roundtrip(self, net, layer, x, y):
        name = format_node_name(net, layer, x, y)
        assert parse_node_name(name) == NodeName(net, layer, x, y)


@st.composite
def netlists(draw):
    names = draw(
        st.lists(node_names, min_size=2, max_size=6, unique=True)
    )
    resistors = []
    for i, (a, b) in enumerate(zip(names, names[1:])):
        resistors.append(Resistor(f"R{i}", a, b, draw(positive)))
    sources = [CurrentSource("I0", names[-1], "0", draw(finite))]
    pads = [VoltageSource("V0", names[0], "0", draw(positive))]
    return Netlist(
        title=draw(st.text(alphabet="abc xyz", max_size=10)).strip(),
        resistors=resistors,
        current_sources=sources,
        voltage_sources=pads,
    )


class TestSpiceRoundtripProperties:
    @given(netlist=netlists())
    @settings(max_examples=50, deadline=None)
    def test_write_parse_roundtrip(self, netlist):
        reparsed = parse_spice(netlist_to_string(netlist))
        assert reparsed.resistors == netlist.resistors
        assert reparsed.current_sources == netlist.current_sources
        assert reparsed.voltage_sources == netlist.voltage_sources


class TestIm2ColProperties:
    @given(
        x=arrays(
            np.float64,
            st.tuples(
                st.integers(1, 2),
                st.integers(1, 3),
                st.integers(3, 7),
                st.integers(3, 7),
            ),
            elements=finite,
        ),
        kernel=st.sampled_from([(1, 1), (2, 2), (3, 3), (1, 3)]),
    )
    @settings(max_examples=40, deadline=None)
    def test_adjoint_identity(self, x, kernel):
        """<im2col(x), c> == <x, col2im(c)> for random tensors."""
        stride, padding = (1, 1), (1, 1)
        cols = im2col(x, kernel, stride, padding)
        rng = np.random.default_rng(0)
        c = rng.standard_normal(cols.shape)
        lhs = float((cols * c).sum())
        rhs = float((x * col2im(c, x.shape, kernel, stride, padding)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)

    @given(
        x=arrays(
            np.float64,
            st.tuples(
                st.integers(1, 2),
                st.integers(1, 3),
                st.integers(2, 5),
                st.integers(2, 5),
            ),
            elements=finite,
        ),
        factor=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_upsample_downsample_scales_by_area(self, x, factor):
        """backward(forward(x)) == factor^2 * x (sum-pool of repeats)."""
        up = upsample_nearest_forward(x, factor)
        down = upsample_nearest_backward(up, factor)
        assert np.allclose(down, factor**2 * x)


class TestMetricProperties:
    images = arrays(
        np.float64,
        st.tuples(st.integers(2, 8), st.integers(2, 8)),
        elements=st.floats(0, 1, allow_nan=False),
    )

    @given(golden=images)
    @settings(max_examples=40, deadline=None)
    def test_mae_identity_and_symmetry(self, golden):
        assert mae(golden, golden) == 0.0
        other = 1.0 - golden
        assert mae(golden, other) == pytest.approx(mae(other, golden))

    @given(golden=images, shift=st.floats(0.0, 0.5, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_mae_translation(self, golden, shift):
        assert mae(golden + shift, golden) == pytest.approx(shift, abs=1e-12)

    @given(golden=images)
    @settings(max_examples=40, deadline=None)
    def test_f1_bounds_and_perfection(self, golden):
        score = f1_hotspot(golden, golden)
        assert score == 1.0
        assert 0.0 <= f1_hotspot(np.zeros_like(golden), golden) <= 1.0


class TestSolverProperties:
    @given(
        diag_boost=st.floats(0.5, 5.0, allow_nan=False),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_cg_solves_random_spd_systems(self, diag_boost, seed):
        import scipy.sparse as sp

        from repro.solvers.base import SolverOptions
        from repro.solvers.cg import CGSolver

        rng = np.random.default_rng(seed)
        n = 12
        a = rng.standard_normal((n, n))
        matrix = sp.csr_matrix(a @ a.T + diag_boost * n * np.eye(n))
        rhs = rng.standard_normal(n)
        result = CGSolver(SolverOptions(tol=1e-10, max_iterations=500)).solve(
            matrix, rhs
        )
        assert result.converged
        assert np.linalg.norm(matrix @ result.x - rhs) < 1e-7 * max(
            1.0, np.linalg.norm(rhs)
        )

    @given(seed=st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_amg_pcg_matches_direct_on_laplacians(self, seed):
        import scipy.sparse as sp

        from repro.solvers.amg_pcg import AMGPCGSolver
        from repro.solvers.base import SolverOptions

        rng = np.random.default_rng(seed)
        n = 10
        eye = sp.identity(n)
        one_d = sp.diags(
            [-np.ones(n - 1), 2.0 * np.ones(n), -np.ones(n - 1)], [-1, 0, 1]
        )
        matrix = sp.csr_matrix(sp.kron(eye, one_d) + sp.kron(one_d, eye))
        rhs = rng.standard_normal(n * n)
        result = AMGPCGSolver(SolverOptions(tol=1e-11)).solve(matrix, rhs)
        import scipy.sparse.linalg as sla

        exact = sla.spsolve(matrix.tocsc(), rhs)
        assert np.allclose(result.x, exact, atol=1e-6)


class TestFeatureStackProperties:
    @given(
        data=arrays(
            np.float64,
            st.tuples(st.integers(1, 4), st.integers(2, 6), st.integers(2, 6)),
            elements=finite,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_minmax_normalization_bounds(self, data):
        from repro.features.maps import FeatureStack

        stack = FeatureStack(
            channels=[f"c{i}" for i in range(data.shape[0])], data=data
        )
        normalized = stack.normalized("minmax")
        assert normalized.data.min() >= -1e-12
        assert normalized.data.max() <= 1.0 + 1e-12
