"""Tests for Schur-complement macromodeling."""

import numpy as np
import pytest

from repro.mna.stamper import build_reduced_system
from repro.solvers.direct import DirectSolver
from repro.solvers.macromodel import SchurReduction, layer_port_rows


@pytest.fixture(scope="module")
def system(fake_design):
    return build_reduced_system(fake_design.grid)


@pytest.fixture(scope="module")
def reduction(system, fake_design):
    ports = layer_port_rows(system, fake_design.grid, min_layer=2)
    return SchurReduction(system, ports)


class TestSchurReduction:
    def test_partition_counts(self, reduction, system):
        assert reduction.num_ports + reduction.num_internal == system.size
        assert reduction.num_ports > 0
        assert reduction.num_internal > 0

    def test_solution_exact(self, reduction, system):
        golden = DirectSolver().solve(system.matrix, system.rhs).x
        x = reduction.solve()
        assert np.allclose(x, golden, atol=1e-8)

    def test_solution_exact_for_other_rhs(self, reduction, system, rng):
        rhs = rng.standard_normal(system.size)
        golden = DirectSolver().solve(system.matrix, rhs).x
        assert np.allclose(reduction.solve(rhs), golden, atol=1e-8)

    def test_macromodel_spd(self, reduction):
        schur = reduction.port_macromodel()
        assert np.allclose(schur, schur.T, atol=1e-10)
        assert np.linalg.eigvalsh(schur).min() > 0

    def test_macromodel_is_dense_port_conductance(self, reduction, system):
        """Port response through the macromodel matches the full system."""
        rng = np.random.default_rng(1)
        rhs = np.zeros(system.size)
        rhs[reduction.port_rows] = rng.standard_normal(reduction.num_ports)
        x_ports_full = DirectSolver().solve(system.matrix, rhs).x[
            reduction.port_rows
        ]
        x_ports_macro = np.linalg.solve(
            reduction.schur, reduction.reduced_rhs(rhs)
        )
        assert np.allclose(x_ports_full, x_ports_macro, atol=1e-8)

    def test_validation(self, system):
        with pytest.raises(ValueError):
            SchurReduction(system, np.array([], dtype=int))
        with pytest.raises(ValueError):
            SchurReduction(system, np.array([system.size + 1]))
        with pytest.raises(ValueError):
            SchurReduction(system, np.arange(system.size))

    def test_rhs_shape_validation(self, reduction):
        with pytest.raises(ValueError):
            reduction.reduced_rhs(np.ones(3))

    def test_layer_port_rows_selects_upper_layers(self, system, fake_design):
        ports = layer_port_rows(system, fake_design.grid, min_layer=3)
        for row in ports:
            node_index = int(system.unknown_indices[row])
            assert fake_design.grid.node(node_index).layer >= 3
