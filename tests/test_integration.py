"""Full-flow integration tests: spice text in, refined IR-drop map out."""

import numpy as np
import pytest

from repro.core.config import FusionConfig
from repro.core.pipeline import IRFusionPipeline
from repro.data.dataset import IRDropDataset, build_sample
from repro.data.synthetic import generate_design, make_fake_spec
from repro.solvers.powerrush import PowerRushSimulator
from repro.spice.writer import netlist_to_string
from repro.train.trainer import TrainConfig


class TestSolverChainConsistency:
    """The same design must give identical answers through every entry."""

    def test_text_file_netlist_agree(self, tmp_path, fake_design):
        text = netlist_to_string(fake_design.netlist)
        path = tmp_path / "d.sp"
        path.write_text(text)
        simulator = PowerRushSimulator(tol=1e-12)
        by_text = simulator.simulate_text(text)
        by_file = PowerRushSimulator(tol=1e-12).simulate_file(path)
        by_grid = PowerRushSimulator(tol=1e-12).simulate_grid(fake_design.grid)
        assert np.allclose(by_text.voltages, by_file.voltages, atol=1e-10)
        assert np.allclose(by_text.voltages, by_grid.voltages, atol=1e-8)

    def test_sample_label_is_solver_limit(self, fake_design):
        """As iterations grow, the rough map converges to the golden label."""
        sample = build_sample(fake_design, solver_iterations=50)
        assert np.abs(sample.rough_label - sample.label).max() < 1e-8


class TestEndToEndLearning:
    def test_fusion_beats_rough_on_training_distribution(self):
        """Core claim, in-miniature: ML refinement improves the rough map."""
        designs = [
            generate_design(make_fake_spec(f"t{i}", seed=100 + i, pixels=16))
            for i in range(3)
        ]
        dataset = IRDropDataset.from_designs(designs, solver_iterations=2)
        from repro.models import IRFusionNet
        from repro.train.trainer import Trainer

        model = IRFusionNet(
            in_channels=len(dataset.channels), base_channels=4, depth=2, seed=0
        )
        trainer = Trainer(
            model, config=TrainConfig(epochs=12, batch_size=3, lr=2e-3)
        )
        trainer.fit(dataset)
        predictions = trainer.predict(dataset)
        fused_mae = np.mean(
            [
                np.abs(p - s.label).mean()
                for p, s in zip(predictions, dataset)
            ]
        )
        rough_mae = np.mean(
            [np.abs(s.rough_label - s.label).mean() for s in dataset]
        )
        assert fused_mae < rough_mae

    def test_pipeline_analysis_close_to_golden_when_converged(self):
        """With a huge solver budget, the pipeline output ~= golden map even
        though the ML correction is whatever training produced."""
        config = FusionConfig(
            pixels=16,
            num_fake=2,
            num_real_train=1,
            num_real_test=1,
            base_channels=4,
            depth=2,
            solver_iterations=60,
            train=TrainConfig(epochs=1, batch_size=4),
            augment=False,
            oversample_fake=1,
            oversample_real=1,
        )
        pipeline = IRFusionPipeline(config)
        pipeline.train()
        _, test_designs = pipeline.generate_designs()
        result = pipeline.analyze_design(test_designs[0])
        from repro.data.dataset import golden_ir_drop

        golden = golden_ir_drop(test_designs[0])
        # rough stage is converged; prediction = converged + small correction
        assert np.abs(result.rough_drop - golden).max() < 1e-6
        assert (
            np.abs(result.predicted_drop - golden).mean()
            < 0.5 * golden.mean() + 1e-6
        )


class TestDataFormatsInterop:
    def test_export_then_simulate_iccad_design(self, tmp_path, fake_design):
        from repro.data.iccad import load_iccad_design, save_iccad_design
        from repro.data.dataset import golden_ir_drop
        from repro.features.current import load_current_map
        from repro.features.distance import effective_distance_map

        save_iccad_design(
            tmp_path / "design",
            fake_design.netlist,
            {
                "current": load_current_map(
                    fake_design.geometry, fake_design.grid
                ),
                "eff_dist": effective_distance_map(
                    fake_design.geometry, fake_design.grid
                ),
                "ir_drop": golden_ir_drop(fake_design),
            },
        )
        netlist, images = load_iccad_design(tmp_path / "design")
        report = PowerRushSimulator(tol=1e-12).simulate_netlist(netlist)
        image = report.drop_image(fake_design.geometry)
        assert np.allclose(image, images["ir_drop"], atol=1e-7)


class TestSolverCrossValidation:
    """Every solver family must agree on the same PG system."""

    def test_five_solvers_agree(self, fake_design):
        from repro.mna.stamper import build_reduced_system
        from repro.solvers.amg_pcg import AMGPCGSolver
        from repro.solvers.base import SolverOptions
        from repro.solvers.cg import CGSolver
        from repro.solvers.direct import DirectSolver
        from repro.solvers.macromodel import SchurReduction, layer_port_rows
        from repro.solvers.schwarz import SchwarzPCGSolver

        system = build_reduced_system(fake_design.grid)
        options = SolverOptions(tol=1e-11, max_iterations=5000)
        solutions = {
            "direct": DirectSolver().solve(system.matrix, system.rhs).x,
            "cg": CGSolver(options).solve(system.matrix, system.rhs).x,
            "amg_pcg": AMGPCGSolver(options).solve(
                system.matrix, system.rhs
            ).x,
            "schwarz": SchwarzPCGSolver(options, num_blocks=4).solve(
                system.matrix, system.rhs
            ).x,
            "schur": SchurReduction(
                system, layer_port_rows(system, fake_design.grid, 2)
            ).solve(),
        }
        reference = solutions.pop("direct")
        for name, x in solutions.items():
            assert np.allclose(x, reference, atol=1e-6), name
