"""Unit tests for the contest metrics."""

import numpy as np
import pytest

from repro.train.metrics import (
    Metrics,
    evaluate_prediction,
    f1_hotspot,
    hotspot_mask,
    mae,
    max_ir_drop_error,
)


class TestMAE:
    def test_zero_for_identical(self, rng):
        image = rng.random((8, 8))
        assert mae(image, image) == 0.0

    def test_known_value(self):
        assert mae(np.full((2, 2), 3.0), np.full((2, 2), 1.0)) == 2.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mae(np.zeros((2, 2)), np.zeros((3, 3)))


class TestF1:
    def test_perfect_prediction(self, rng):
        golden = rng.random((16, 16))
        assert f1_hotspot(golden, golden) == 1.0

    def test_no_overlap_zero(self):
        golden = np.zeros((4, 4))
        golden[0, 0] = 1.0
        prediction = np.zeros((4, 4))
        prediction[3, 3] = 1.0
        assert f1_hotspot(prediction, golden) == 0.0

    def test_threshold_is_on_golden_max(self):
        golden = np.zeros((4, 4))
        golden[0, 0] = 1.0
        # prediction exceeds 0.9 * golden max at the right pixel
        prediction = np.zeros((4, 4))
        prediction[0, 0] = 0.95
        assert f1_hotspot(prediction, golden) == 1.0

    def test_partial_overlap(self):
        golden = np.zeros((4, 4))
        golden[0, :2] = 1.0  # two hotspots
        prediction = np.zeros((4, 4))
        prediction[0, 0] = 1.0  # hits one of them
        score = f1_hotspot(prediction, golden)
        assert score == pytest.approx(2 / 3)

    def test_flat_map_convention(self):
        flat = np.zeros((4, 4))
        assert f1_hotspot(flat, flat) == 1.0

    def test_hotspot_mask(self):
        golden = np.array([[1.0, 0.95, 0.5]])
        assert hotspot_mask(golden).tolist() == [[True, True, False]]


class TestMIRDE:
    def test_error_at_peak_location(self):
        golden = np.zeros((3, 3))
        golden[1, 1] = 1.0
        prediction = np.zeros((3, 3))
        prediction[1, 1] = 0.7
        prediction[0, 0] = 99.0  # irrelevant to MIRDE
        assert max_ir_drop_error(prediction, golden) == pytest.approx(0.3)

    def test_zero_for_perfect(self, rng):
        golden = rng.random((8, 8))
        assert max_ir_drop_error(golden, golden) == 0.0


class TestMetricsBundle:
    def test_average(self):
        metrics = Metrics.average(
            [
                Metrics(mae=1.0, f1=0.4, mirde=2.0, runtime_seconds=1.0),
                Metrics(mae=3.0, f1=0.6, mirde=4.0, runtime_seconds=3.0),
            ]
        )
        assert metrics.mae == 2.0
        assert metrics.f1 == pytest.approx(0.5)
        assert metrics.mirde == 3.0
        assert metrics.runtime_seconds == 2.0

    def test_average_empty_rejected(self):
        with pytest.raises(ValueError):
            Metrics.average([])

    def test_scaled(self):
        metrics = Metrics(mae=1e-4, f1=0.5, mirde=2e-4, runtime_seconds=1.0)
        scaled = metrics.scaled(1e4)
        assert scaled.mae == pytest.approx(1.0)
        assert scaled.mirde == pytest.approx(2.0)
        assert scaled.f1 == 0.5  # F1 is unitless
        assert scaled.runtime_seconds == 1.0

    def test_evaluate_prediction_bundle(self, rng):
        golden = rng.random((8, 8))
        bundle = evaluate_prediction(golden, golden, runtime_seconds=0.5)
        assert bundle.mae == 0.0
        assert bundle.f1 == 1.0
        assert bundle.mirde == 0.0
        assert bundle.runtime_seconds == 0.5
