"""Tests for solver guardrails and the fallback cascade (fault-injected)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.mna.stamper import build_reduced_system
from repro.solvers.cg import CGSolver, JacobiPCGSolver
from repro.solvers.guard import (
    FallbackCascade,
    GuardrailOptions,
    IterationGuard,
    SolverFailure,
)
from repro.testing.faults import FaultPlan, corrupt_matrix, make_singular


def small_spd(n: int = 12) -> tuple[sp.csr_matrix, np.ndarray]:
    """A small SPD tridiagonal system (1D resistor chain)."""
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    matrix = sp.diags([off, main, off], offsets=(-1, 0, 1)).tocsr()
    rhs = np.linspace(0.1, 1.0, n)
    return matrix, rhs


class TestIterationGuard:
    def test_nan_residual_trips(self):
        guard = IterationGuard()
        guard.observe(0, 1.0)
        guard.observe(1, float("nan"))
        assert guard.tripped == "nan_residual"

    def test_divergence_trips(self):
        guard = IterationGuard(GuardrailOptions(divergence_factor=10.0))
        guard.observe(0, 1.0)
        guard.observe(1, 5.0)
        assert guard.tripped is None
        guard.observe(2, 100.0)
        assert guard.tripped == "diverged"

    def test_stagnation_trips(self):
        guard = IterationGuard(
            GuardrailOptions(stagnation_window=3, stagnation_improvement=0.01)
        )
        guard.observe(0, 1.0)
        for i in range(1, 10):
            guard.observe(i, 0.5)  # zero progress forever
            if guard.tripped:
                break
        assert guard.tripped == "stagnated"

    def test_healthy_convergence_never_trips(self):
        guard = IterationGuard()
        norms = [10.0 * 0.5**k for k in range(30)]
        for i, norm in enumerate(norms):
            guard.observe(i, norm)
        assert guard.tripped is None

    def test_time_budget(self, monkeypatch):
        guard = IterationGuard(GuardrailOptions(max_seconds=0.0))
        guard.observe(0, 1.0)
        guard.observe(1, 0.9)
        assert guard.tripped == "time_budget"

    def test_expired_deadline_trips(self):
        from repro.obs import deadline_scope

        with deadline_scope(0.0):
            guard = IterationGuard()
            guard.observe(0, 1.0)
            guard.observe(1, 0.9)
        assert guard.tripped == "deadline"

    def test_generous_deadline_never_trips(self):
        from repro.obs import deadline_scope

        with deadline_scope(3600.0):
            guard = IterationGuard()
            for i, norm in enumerate(10.0 * 0.5 ** np.arange(20)):
                guard.observe(i, float(norm))
        assert guard.tripped is None


class TestGuardedPCG:
    def test_nan_matrix_aborts_not_raises(self):
        matrix, rhs = small_spd()
        poisoned = corrupt_matrix(matrix, row=3)
        result = CGSolver().solve(poisoned, rhs, guard=IterationGuard())
        assert result.aborted == "nan_residual"
        assert not result.converged

    def test_clean_solve_unaffected_by_guard(self):
        matrix, rhs = small_spd()
        guarded = JacobiPCGSolver().solve(matrix, rhs, guard=IterationGuard())
        plain = JacobiPCGSolver().solve(matrix, rhs)
        assert guarded.aborted is None
        assert guarded.converged
        np.testing.assert_allclose(guarded.x, plain.x)

    def test_fault_hook_corrupts_on_schedule(self):
        matrix, rhs = small_spd()
        plan = FaultPlan(nan_residual={"cg": 2})
        guard = IterationGuard(
            GuardrailOptions(fault_hook=plan.residual_hook), solver_name="cg"
        )
        result = CGSolver().solve(matrix, rhs, guard=guard)
        assert result.aborted == "nan_residual"
        assert result.iterations == 2
        assert plan.fired("nan_residual") == 1


class TestFallbackCascade:
    def test_healthy_system_single_attempt(self):
        matrix, rhs = small_spd()
        result, diagnostics = FallbackCascade().solve(matrix, rhs)
        assert result.converged
        assert [a.solver for a in diagnostics.attempts] == ["amg_pcg"]
        assert diagnostics.fallbacks == []
        assert diagnostics.final_solver == "amg_pcg"

    def test_forced_amg_divergence_falls_back_to_pcg_then_direct(self):
        matrix, rhs = small_spd()
        plan = FaultPlan(
            divergence={
                "amg_pcg": 1,
                "amg_pcg_retry": 1,
                "jacobi_pcg": 1,
            }
        )
        cascade = FallbackCascade(
            guard_options=GuardrailOptions(
                divergence_factor=10.0, fault_hook=plan.residual_hook
            )
        )
        result, diagnostics = cascade.solve(matrix, rhs)
        assert result.converged
        assert np.all(np.isfinite(result.x))
        # The full degradation chain is observable, in order.
        assert [a.solver for a in diagnostics.attempts] == [
            "amg_pcg", "amg_pcg_retry", "jacobi_pcg", "direct",
        ]
        assert diagnostics.final_solver == "direct"
        assert diagnostics.num_fallbacks == 3
        for attempt in diagnostics.attempts[:3]:
            assert attempt.aborted == "diverged"

    def test_nan_residual_fault_degrades(self):
        matrix, rhs = small_spd()
        plan = FaultPlan(nan_residual={"amg_pcg": 1})
        cascade = FallbackCascade(
            guard_options=GuardrailOptions(fault_hook=plan.residual_hook)
        )
        result, diagnostics = cascade.solve(matrix, rhs)
        assert result.converged
        assert diagnostics.attempts[0].aborted == "nan_residual"
        assert diagnostics.final_solver == "amg_pcg_retry"

    def test_injected_stage_error_recorded(self):
        matrix, rhs = small_spd()
        plan = FaultPlan(fail_stage={"amg_pcg"})
        cascade = FallbackCascade(
            guard_options=GuardrailOptions(fault_hook=plan.residual_hook)
        )
        result, diagnostics = cascade.solve(matrix, rhs)
        assert result.converged
        assert diagnostics.attempts[0].error is not None
        assert "injected" in diagnostics.attempts[0].error

    def test_singular_system_raises_solver_failure_with_diagnostics(self):
        matrix, rhs = small_spd()
        singular = make_singular(matrix, row=0)
        rhs = rhs.copy()
        rhs[0] = 1.0  # inconsistent: no solution exists
        with pytest.raises(SolverFailure) as excinfo:
            FallbackCascade().solve(singular, rhs)
        diagnostics = excinfo.value.diagnostics
        assert [a.solver for a in diagnostics.attempts] == [
            "amg_pcg", "amg_pcg_retry", "jacobi_pcg", "direct",
        ]
        assert all(a.failed for a in diagnostics.attempts)

    def test_diagnostics_serialise(self):
        matrix, rhs = small_spd()
        _, diagnostics = FallbackCascade().solve(matrix, rhs)
        payload = diagnostics.to_dict()
        assert payload["final_solver"] == "amg_pcg"
        assert "solver_chain=" in diagnostics.summary()
        assert payload["attempts"][0]["backoff_seconds"] == 0.0

    def test_fallback_attempts_record_jittered_backoff(self):
        matrix, rhs = small_spd()
        plan = FaultPlan(nan_residual={"amg_pcg": 1, "amg_pcg_retry": 1})
        cascade = FallbackCascade(
            guard_options=GuardrailOptions(fault_hook=plan.residual_hook),
            backoff_base=0.01,
            backoff_cap=0.05,
        )
        result, diagnostics = cascade.solve(matrix, rhs)
        assert result.converged
        assert diagnostics.attempts[0].backoff_seconds == 0.0
        for attempt in diagnostics.attempts[1:]:
            assert 0.005 <= attempt.backoff_seconds <= 0.075
        # budget_seconds accounts for the waits, not just the solves.
        assert diagnostics.budget_seconds >= sum(
            a.backoff_seconds for a in diagnostics.attempts
        )

    def test_backoff_deterministic_per_stage(self):
        cascade = FallbackCascade()
        assert cascade._backoff_delay(1, "amg_pcg_retry") == (
            cascade._backoff_delay(1, "amg_pcg_retry")
        )
        assert cascade._backoff_delay(3, "direct") <= cascade.backoff_cap * 1.5

    def test_expired_deadline_short_circuits_to_direct(self):
        from repro.obs import deadline_scope

        matrix, rhs = small_spd()
        with deadline_scope(0.0):
            result, diagnostics = FallbackCascade().solve(matrix, rhs)
        assert np.all(np.isfinite(result.x))
        # Every iterative stage is skipped without running; the direct
        # stage always runs so the caller still gets a solution.
        assert [a.solver for a in diagnostics.attempts] == [
            "amg_pcg", "amg_pcg_retry", "jacobi_pcg", "direct",
        ]
        for attempt in diagnostics.attempts[:3]:
            assert attempt.aborted == "deadline_skipped"
            assert attempt.seconds == 0.0
        assert diagnostics.final_solver == "direct"

    def test_live_deadline_runs_normally(self):
        from repro.obs import deadline_scope

        matrix, rhs = small_spd()
        with deadline_scope(3600.0):
            result, diagnostics = FallbackCascade().solve(matrix, rhs)
        assert result.converged
        assert [a.solver for a in diagnostics.attempts] == ["amg_pcg"]


class TestSimulatorIntegration:
    def test_robust_simulation_with_all_krylov_stages_failing(self, tiny_netlist):
        from repro.solvers.powerrush import PowerRushSimulator

        plan = FaultPlan(
            nan_residual={"amg_pcg": 1, "amg_pcg_retry": 1, "jacobi_pcg": 1}
        )
        simulator = PowerRushSimulator(
            guard_options=GuardrailOptions(fault_hook=plan.residual_hook)
        )
        report = simulator.simulate_netlist(tiny_netlist)
        assert np.all(np.isfinite(report.ir_drop))
        solver_diag = report.diagnostics.solver
        assert solver_diag.final_solver == "direct"
        assert solver_diag.num_fallbacks == 3

    def test_strict_mode_keeps_original_solver(self, tiny_netlist):
        from repro.solvers.powerrush import PowerRushSimulator

        report = PowerRushSimulator(robust=False).simulate_netlist(tiny_netlist)
        assert report.solve.converged
        assert report.diagnostics.solver is None

    def test_reduced_system_solution_matches_strict(self, tiny_netlist):
        from repro.solvers.powerrush import PowerRushSimulator

        robust = PowerRushSimulator().simulate_netlist(tiny_netlist)
        strict = PowerRushSimulator(robust=False).simulate_netlist(tiny_netlist)
        np.testing.assert_allclose(robust.voltages, strict.voltages)
