"""Test utilities: numerical gradient checking for nn modules and losses."""

from __future__ import annotations

import numpy as np


def numerical_input_gradient(
    module, x: np.ndarray, grad_out: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of ``sum(module(x) * grad_out)`` w.r.t. x."""
    x = x.copy()
    num = np.zeros_like(x)
    for idx in np.ndindex(*x.shape):
        orig = x[idx]
        x[idx] = orig + eps
        plus = np.array(module(x))  # snapshot: modules may return views
        x[idx] = orig - eps
        minus = np.array(module(x))
        x[idx] = orig
        num[idx] = float(((plus - minus) * grad_out).sum()) / (2 * eps)
    return num


def check_input_gradient(module, x: np.ndarray, rng, tol: float = 1e-5) -> None:
    """Assert analytic input gradient matches numeric for *module*."""
    y = module(x)
    grad_out = rng.standard_normal(y.shape)
    module(x)  # refresh caches after probing shape
    module.zero_grad()
    analytic = module.backward(grad_out)
    numeric = numerical_input_gradient(module, x, grad_out)
    err = np.abs(analytic - numeric).max()
    assert err < tol, f"input gradient error {err:.3e} exceeds {tol}"


def check_parameter_gradients(module, x: np.ndarray, rng, tol: float = 1e-4) -> None:
    """Assert analytic parameter gradients match numeric for *module*."""
    y = module(x)
    grad_out = rng.standard_normal(y.shape)
    module.zero_grad()
    module.backward(grad_out)
    for name, parameter in module.named_parameters():
        analytic = parameter.grad.copy()
        flat = parameter.data.reshape(-1)
        # probe a handful of coordinates to keep runtime bounded
        probe = np.linspace(0, flat.size - 1, min(flat.size, 6)).astype(int)
        for k in probe:
            orig = flat[k]
            flat[k] = orig + 1e-6
            plus = float((module(x) * grad_out).sum())
            flat[k] = orig - 1e-6
            minus = float((module(x) * grad_out).sum())
            flat[k] = orig
            numeric = (plus - minus) / 2e-6
            err = abs(analytic.reshape(-1)[k] - numeric)
            assert err < tol, (
                f"param {name}[{k}] gradient error {err:.3e} exceeds {tol}"
            )
    module(x)  # restore caches to a consistent state
