"""Unit tests for the trainer (loop, residual learning, curriculum)."""

import numpy as np
import pytest

from repro.data.dataset import IRDropDataset
from repro.models import IREDGe, IRFusionNet
from repro.train.trainer import TrainConfig, Trainer


def make_model(dataset, cls=IRFusionNet, **kwargs):
    return cls(
        in_channels=len(dataset.channels), base_channels=4, depth=2, seed=0, **kwargs
    )


class TestFit:
    def test_loss_decreases(self, tiny_dataset):
        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(epochs=6, batch_size=2, lr=2e-3),
        )
        history = trainer.fit(tiny_dataset)
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_history_lengths(self, tiny_dataset):
        trainer = Trainer(
            make_model(tiny_dataset), config=TrainConfig(epochs=3, batch_size=2)
        )
        history = trainer.fit(tiny_dataset)
        assert len(history.epoch_losses) == 3
        assert len(history.epoch_sizes) == 3
        assert len(history.learning_rates) == 3
        assert history.final_loss == history.epoch_losses[-1]

    def test_empty_dataset_rejected(self, tiny_dataset):
        trainer = Trainer(make_model(tiny_dataset))
        with pytest.raises(ValueError):
            trainer.fit(IRDropDataset([]))

    def test_curriculum_grows_subsets(self, tiny_dataset):
        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(epochs=6, batch_size=2, use_curriculum=True),
        )
        history = trainer.fit(tiny_dataset)
        assert history.epoch_sizes[0] < history.epoch_sizes[-1]

    def test_lr_schedule_applied(self, tiny_dataset):
        from repro.train.schedule import StepLR

        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(epochs=4, batch_size=2),
            lr_schedule=StepLR(lr=1e-2, step_size=2, gamma=0.1),
        )
        history = trainer.fit(tiny_dataset)
        assert history.learning_rates == [1e-2, 1e-2, 1e-3, 1e-3]


class TestResidualLearning:
    def test_untrained_fusion_predicts_rough(self, tiny_dataset):
        """Zero-init head + residual learning == rough numerical solution."""
        trainer = Trainer(make_model(tiny_dataset), config=TrainConfig())
        predictions = trainer.predict(tiny_dataset)
        for prediction, sample in zip(predictions, tiny_dataset):
            assert np.allclose(prediction, sample.rough_label, atol=1e-12)

    def test_residual_disabled_without_rough(self, fake_design):
        from repro.data.dataset import build_sample
        from repro.features.fusion import FeatureConfig

        sample = build_sample(fake_design, FeatureConfig(use_numerical=False))
        dataset = IRDropDataset([sample])
        trainer = Trainer(make_model(dataset), config=TrainConfig())
        prediction = trainer.predict(dataset)
        assert np.allclose(prediction, 0.0)  # zero-init head, no residual base

    def test_residual_flag_off(self, tiny_dataset):
        trainer = Trainer(
            make_model(tiny_dataset), config=TrainConfig(residual=False)
        )
        predictions = trainer.predict(tiny_dataset)
        assert np.allclose(predictions, 0.0)

    def test_training_improves_on_rough(self, tiny_dataset):
        """After fitting, train-set MAE must beat the rough solution."""
        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(epochs=15, batch_size=2, lr=2e-3),
        )
        trainer.fit(tiny_dataset)
        predictions = trainer.predict(tiny_dataset)
        for prediction, sample in zip(predictions, tiny_dataset):
            fused = np.abs(prediction - sample.label).mean()
            rough = np.abs(sample.rough_label - sample.label).mean()
            assert fused < rough


class TestPredict:
    def test_shapes(self, tiny_dataset):
        trainer = Trainer(make_model(tiny_dataset), config=TrainConfig())
        predictions = trainer.predict(tiny_dataset)
        assert predictions.shape == (2, 16, 16)

    def test_empty_rejected(self, tiny_dataset):
        trainer = Trainer(make_model(tiny_dataset), config=TrainConfig())
        with pytest.raises(ValueError):
            trainer.predict([])

    def test_model_left_in_train_mode(self, tiny_dataset):
        trainer = Trainer(make_model(tiny_dataset), config=TrainConfig())
        trainer.predict(tiny_dataset)
        assert trainer.model.training


class TestTrainConfigValidation:
    def test_defaults_sane(self):
        config = TrainConfig()
        assert config.label_scale > 0
        assert config.epochs > 0


class TestValidationAndEarlyStopping:
    def test_validation_mae_recorded(self, tiny_dataset):
        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(epochs=3, batch_size=2),
        )
        history = trainer.fit(tiny_dataset, validation=tiny_dataset)
        assert len(history.validation_mae) == 3
        assert history.best_validation_mae == min(history.validation_mae)

    def test_no_validation_no_metrics(self, tiny_dataset):
        trainer = Trainer(
            make_model(tiny_dataset), config=TrainConfig(epochs=2, batch_size=2)
        )
        history = trainer.fit(tiny_dataset)
        assert history.validation_mae == []
        with pytest.raises(ValueError):
            history.best_validation_mae

    def test_early_stopping_halts(self, tiny_dataset):
        # absurd LR makes validation stagnate/diverge almost immediately
        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(
                epochs=30, batch_size=2, lr=5.0, early_stop_patience=2
            ),
        )
        history = trainer.fit(tiny_dataset, validation=tiny_dataset)
        assert history.stopped_early
        assert len(history.epoch_losses) < 30

    def test_early_stopping_restores_best_weights(self, tiny_dataset):
        import numpy as np

        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(
                epochs=30, batch_size=2, lr=5.0, early_stop_patience=2
            ),
        )
        history = trainer.fit(tiny_dataset, validation=tiny_dataset)
        restored_mae = trainer._validation_mae(tiny_dataset)
        assert restored_mae == pytest.approx(
            history.best_validation_mae, rel=1e-9
        )
