"""Unit tests for the trainer (loop, residual learning, curriculum)."""

import numpy as np
import pytest

from repro.data.dataset import IRDropDataset
from repro.models import IREDGe, IRFusionNet
from repro.train.trainer import TrainConfig, Trainer


def make_model(dataset, cls=IRFusionNet, **kwargs):
    return cls(
        in_channels=len(dataset.channels), base_channels=4, depth=2, seed=0, **kwargs
    )


class TestFit:
    def test_loss_decreases(self, tiny_dataset):
        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(epochs=6, batch_size=2, lr=2e-3),
        )
        history = trainer.fit(tiny_dataset)
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_history_lengths(self, tiny_dataset):
        trainer = Trainer(
            make_model(tiny_dataset), config=TrainConfig(epochs=3, batch_size=2)
        )
        history = trainer.fit(tiny_dataset)
        assert len(history.epoch_losses) == 3
        assert len(history.epoch_sizes) == 3
        assert len(history.learning_rates) == 3
        assert history.final_loss == history.epoch_losses[-1]

    def test_empty_dataset_rejected(self, tiny_dataset):
        trainer = Trainer(make_model(tiny_dataset))
        with pytest.raises(ValueError):
            trainer.fit(IRDropDataset([]))

    def test_curriculum_grows_subsets(self, tiny_dataset):
        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(epochs=6, batch_size=2, use_curriculum=True),
        )
        history = trainer.fit(tiny_dataset)
        assert history.epoch_sizes[0] < history.epoch_sizes[-1]

    def test_lr_schedule_applied(self, tiny_dataset):
        from repro.train.schedule import StepLR

        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(epochs=4, batch_size=2),
            lr_schedule=StepLR(lr=1e-2, step_size=2, gamma=0.1),
        )
        history = trainer.fit(tiny_dataset)
        assert history.learning_rates == [1e-2, 1e-2, 1e-3, 1e-3]


class TestResidualLearning:
    def test_untrained_fusion_predicts_rough(self, tiny_dataset):
        """Zero-init head + residual learning == rough numerical solution."""
        trainer = Trainer(make_model(tiny_dataset), config=TrainConfig())
        predictions = trainer.predict(tiny_dataset)
        for prediction, sample in zip(predictions, tiny_dataset):
            assert np.allclose(prediction, sample.rough_label, atol=1e-12)

    def test_residual_disabled_without_rough(self, fake_design):
        from repro.data.dataset import build_sample
        from repro.features.fusion import FeatureConfig

        sample = build_sample(fake_design, FeatureConfig(use_numerical=False))
        dataset = IRDropDataset([sample])
        trainer = Trainer(make_model(dataset), config=TrainConfig())
        prediction = trainer.predict(dataset)
        assert np.allclose(prediction, 0.0)  # zero-init head, no residual base

    def test_residual_flag_off(self, tiny_dataset):
        trainer = Trainer(
            make_model(tiny_dataset), config=TrainConfig(residual=False)
        )
        predictions = trainer.predict(tiny_dataset)
        assert np.allclose(predictions, 0.0)

    def test_training_improves_on_rough(self, tiny_dataset):
        """After fitting, train-set MAE must beat the rough solution."""
        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(epochs=15, batch_size=2, lr=2e-3),
        )
        trainer.fit(tiny_dataset)
        predictions = trainer.predict(tiny_dataset)
        for prediction, sample in zip(predictions, tiny_dataset):
            fused = np.abs(prediction - sample.label).mean()
            rough = np.abs(sample.rough_label - sample.label).mean()
            assert fused < rough


class TestPredict:
    def test_shapes(self, tiny_dataset):
        trainer = Trainer(make_model(tiny_dataset), config=TrainConfig())
        predictions = trainer.predict(tiny_dataset)
        assert predictions.shape == (2, 16, 16)

    def test_empty_rejected(self, tiny_dataset):
        trainer = Trainer(make_model(tiny_dataset), config=TrainConfig())
        with pytest.raises(ValueError):
            trainer.predict([])

    def test_model_left_in_train_mode(self, tiny_dataset):
        trainer = Trainer(make_model(tiny_dataset), config=TrainConfig())
        trainer.predict(tiny_dataset)
        assert trainer.model.training


class TestTrainConfigValidation:
    def test_defaults_sane(self):
        config = TrainConfig()
        assert config.label_scale > 0
        assert config.epochs > 0


class _BatchSizeLoss:
    """Stub loss returning the batch size, with zero gradients."""

    def forward(self, prediction, target):
        self._shape = prediction.shape
        self._dtype = prediction.dtype
        return float(len(prediction))

    def backward(self):
        return np.zeros(self._shape, dtype=self._dtype)


def five_sample_dataset(tiny_dataset):
    samples = list(tiny_dataset)
    return IRDropDataset(samples * 2 + samples[:1])


class TestEpochLossWeighting:
    def test_short_trailing_batch_weighted_by_samples(self, tiny_dataset):
        # 5 samples at batch_size=2 -> batches of 2, 2, 1.  The stub loss
        # returns the batch size, so the sample-weighted epoch loss is
        # (2*2 + 2*2 + 1*1) / 5; a plain mean over batches would say 5/3.
        dataset = five_sample_dataset(tiny_dataset)
        trainer = Trainer(
            make_model(dataset),
            loss=_BatchSizeLoss(),
            config=TrainConfig(epochs=1, batch_size=2),
        )
        history = trainer.fit(dataset)
        assert history.epoch_losses[0] == pytest.approx(9 / 5)

    def test_sharded_engine_weights_identically(self, tiny_dataset):
        dataset = five_sample_dataset(tiny_dataset)
        trainer = Trainer(
            make_model(dataset),
            loss=_BatchSizeLoss(),
            config=TrainConfig(epochs=1, batch_size=2, grad_shards=2),
        )
        history = trainer.fit(dataset)
        # Per-shard losses are shard means re-weighted by shard size, so
        # the epoch loss agrees with the in-process loop: shards of a
        # 2-batch are 1+1 -> batch loss 1, and the trailing 1-batch is a
        # single shard -> (2*1 + 2*1 + 1*1) / 5.
        assert history.epoch_losses[0] == pytest.approx(1.0)


class TestDataParallelEngine:
    @staticmethod
    def run(dataset, **kwargs):
        trainer = Trainer(
            make_model(dataset),
            config=TrainConfig(epochs=3, batch_size=2, lr=2e-3, **kwargs),
        )
        history = trainer.fit(dataset)
        return trainer, history

    def test_single_shard_sync1_matches_serial_bitwise(self, tiny_dataset):
        # One shard per batch published every step is mathematically the
        # classic loop; the engine must reproduce it to the last bit.
        dataset = five_sample_dataset(tiny_dataset)
        serial, serial_history = self.run(dataset)
        sharded, sharded_history = self.run(dataset, grad_shards=1, sync_every=1)
        assert sharded_history.epoch_losses == serial_history.epoch_losses
        serial_state = serial.model.state_dict()
        for key, value in sharded.model.state_dict().items():
            np.testing.assert_array_equal(value, serial_state[key], err_msg=key)

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_fp64_trajectory_invariant_across_jobs(self, tiny_dataset, jobs):
        # The shard decomposition and the fixed-order tree reduction
        # depend only on grad_shards, so fp64 runs are bitwise identical
        # at any worker count.
        dataset = five_sample_dataset(tiny_dataset)
        reference, ref_history = self.run(dataset, jobs=1, grad_shards=2)
        candidate, history = self.run(dataset, jobs=jobs, grad_shards=2)
        assert history.epoch_losses == ref_history.epoch_losses
        ref_state = reference.model.state_dict()
        for key, value in candidate.model.state_dict().items():
            np.testing.assert_array_equal(value, ref_state[key], err_msg=key)

    def test_mixed_precision_tracks_fp64(self, tiny_dataset):
        dataset = five_sample_dataset(tiny_dataset)
        _, fp64_history = self.run(dataset, jobs=2)
        _, mixed_history = self.run(dataset, jobs=2, precision="mixed")
        assert mixed_history.final_loss == pytest.approx(
            fp64_history.final_loss, rel=1e-2
        )
        assert mixed_history.epoch_losses[-1] < mixed_history.epoch_losses[0]

    def test_master_weights_stay_float64_in_mixed(self, tiny_dataset):
        trainer, _ = self.run(tiny_dataset, precision="mixed")
        for key, value in trainer.model.state_dict().items():
            assert value.dtype == np.float64, key

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_overflow_guard_skips_steps_and_stays_finite(self, tiny_dataset):
        # An absurd starting loss scale overflows fp32 gradients; the
        # guard must skip those steps (recording them) rather than let
        # non-finite values reach the master weights.
        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(
                epochs=2, batch_size=2, precision="mixed", loss_scale=1e39
            ),
        )
        history = trainer.fit(tiny_dataset)
        assert history.overflow_steps > 0
        assert np.isfinite(history.final_loss)
        assert trainer._loss_scale < 1e39
        for key, value in trainer.model.state_dict().items():
            assert np.isfinite(value).all(), key

    def test_workspaces_released_after_fit(self, tiny_dataset):
        trainer, _ = self.run(tiny_dataset, jobs=2, precision="mixed")
        assert sum(w.nbytes for w in trainer.model.workspaces()) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            TrainConfig(jobs=0)
        with pytest.raises(ValueError, match="precision"):
            TrainConfig(precision="fp16")
        with pytest.raises(ValueError, match="grad_shards"):
            TrainConfig(grad_shards=-1)
        with pytest.raises(ValueError, match="sync_every"):
            TrainConfig(sync_every=-2)
        with pytest.raises(ValueError, match="loss_scale"):
            TrainConfig(loss_scale=-1.0)


class TestValidationAndEarlyStopping:
    def test_validation_mae_recorded(self, tiny_dataset):
        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(epochs=3, batch_size=2),
        )
        history = trainer.fit(tiny_dataset, validation=tiny_dataset)
        assert len(history.validation_mae) == 3
        assert history.best_validation_mae == min(history.validation_mae)

    def test_no_validation_no_metrics(self, tiny_dataset):
        trainer = Trainer(
            make_model(tiny_dataset), config=TrainConfig(epochs=2, batch_size=2)
        )
        history = trainer.fit(tiny_dataset)
        assert history.validation_mae == []
        with pytest.raises(ValueError):
            history.best_validation_mae

    def test_early_stopping_halts(self, tiny_dataset):
        # absurd LR makes validation stagnate/diverge almost immediately
        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(
                epochs=30, batch_size=2, lr=5.0, early_stop_patience=2
            ),
        )
        history = trainer.fit(tiny_dataset, validation=tiny_dataset)
        assert history.stopped_early
        assert len(history.epoch_losses) < 30

    def test_early_stopping_restores_best_weights(self, tiny_dataset):
        import numpy as np

        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(
                epochs=30, batch_size=2, lr=5.0, early_stop_patience=2
            ),
        )
        history = trainer.fit(tiny_dataset, validation=tiny_dataset)
        restored_mae = trainer._validation_mae(tiny_dataset)
        assert restored_mae == pytest.approx(
            history.best_validation_mae, rel=1e-9
        )
