"""Tests for the parallel batch-analysis engine."""

import os
import signal
import threading

import numpy as np
import pytest

from repro.core.batch import (
    BatchAnalyzer,
    BatchItem,
    BatchReport,
    parallel_map,
    tree_reduce,
)
from repro.obs import monotonic
from repro.train.schedule import shard_batch


def _square(x):
    return x * x


def _reciprocal(x):
    return 1.0 / x


def _slow_square(x):
    # Busy-wait a few ms so concurrent parallel_map calls overlap and
    # actually contend for the module worker lock.
    deadline = monotonic() + 0.02
    while monotonic() < deadline:
        pass
    return x * x


def _nested_map(x):
    # Runs inside a worker: a pool worker is daemonic (sees the worker
    # env marker), a forked worker inherits the held worker lock —
    # either way the inner call must degrade to serial instead of
    # spawning grandchildren or clobbering the parent's worker state.
    outcomes, degraded = parallel_map(_square, [x, x + 1], jobs=2)
    return ([value for value, _ in outcomes], degraded)


class TestParallelMap:
    def test_serial_preserves_order(self):
        outcomes, degraded = parallel_map(_square, [3, 1, 2], jobs=1)
        assert outcomes == [(9, None), (1, None), (4, None)]
        assert not degraded

    def test_parallel_preserves_order(self):
        outcomes, degraded = parallel_map(_square, list(range(7)), jobs=2)
        assert [value for value, _ in outcomes] == [k * k for k in range(7)]
        assert not degraded

    def test_empty_items(self):
        outcomes, degraded = parallel_map(_square, [], jobs=4)
        assert outcomes == [] and not degraded

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_per_item_errors_are_captured(self, jobs):
        outcomes, _ = parallel_map(_reciprocal, [2.0, 0.0, 4.0], jobs=jobs)
        assert outcomes[0] == (0.5, None)
        value, error = outcomes[1]
        assert value is None and error.startswith("ZeroDivisionError")
        assert outcomes[2] == (0.25, None)

    def test_worker_death_degrades_to_serial(self, tmp_path):
        marker = tmp_path / "died-once"

        def fragile(x):
            if x == 2 and not marker.exists():
                marker.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return x * 10

        outcomes, degraded = parallel_map(fragile, [1, 2, 3, 4], jobs=2)
        assert degraded
        assert [value for value, _ in outcomes] == [10, 20, 30, 40]

    def test_concurrent_calls_never_mix_results(self):
        # Regression: threads entering parallel_map used to race on the
        # shared worker state, forking workers that ran the wrong
        # function/items (and forking off a non-main thread can deadlock
        # the child outright).  The spawn pool serialises job intake in
        # one supervisor, so concurrent threaded callers parallelize
        # safely — no degradation, and every call gets its own results.
        items_by_key = {key: list(range(key, key + 4)) for key in (1, 10, 100)}
        results: dict[int, tuple] = {}

        def run(key):
            results[key] = parallel_map(_slow_square, items_by_key[key], 2)

        threads = [
            threading.Thread(target=run, args=(key,)) for key in items_by_key
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for key, items in items_by_key.items():
            outcomes, degraded = results[key]
            assert not degraded
            assert [value for value, _ in outcomes] == [x * x for x in items]

    def test_nested_call_inside_worker_degrades_to_serial(self):
        outcomes, outer_degraded = parallel_map(_nested_map, [10, 20], jobs=2)
        expected = {10: [100, 121], 20: [400, 441]}
        for item, (value, error) in zip([10, 20], outcomes):
            assert error is None
            values, inner_degraded = value
            assert values == expected[item]
            if not outer_degraded:
                # Forked workers inherit the held lock, so the nested
                # call must have taken the serial path.
                assert inner_degraded


class TestTreeReduce:
    def test_pairing_order_is_fixed(self):
        # Level by level, 2k combines with 2k+1 and an odd tail passes
        # through: the shape of the reduction depends only on the count.
        combined = tree_reduce(list("abcde"), combine=lambda a, b: f"({a}{b})")
        assert combined == "(((ab)(cd))e)"

    @pytest.mark.parametrize("count", [1, 2, 3, 7, 8, 13])
    def test_matches_plain_sum(self, count):
        rng = np.random.default_rng(count)
        values = [rng.standard_normal(5) for _ in range(count)]
        np.testing.assert_allclose(tree_reduce(values), np.sum(values, axis=0))

    def test_single_value_passes_through(self):
        value = np.arange(3.0)
        assert tree_reduce([value]) is value

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            tree_reduce([])

    def test_deterministic_across_repeats(self):
        rng = np.random.default_rng(9)
        values = [rng.standard_normal(64) * 10.0**k for k in range(6)]
        first = tree_reduce(values)
        np.testing.assert_array_equal(first, tree_reduce(values))


class TestShardBatch:
    def test_concatenation_preserves_order(self):
        batch = np.array([5, 3, 9, 1, 7])
        shards = shard_batch(batch, 2)
        np.testing.assert_array_equal(np.concatenate(shards), batch)

    def test_shard_sizes_balanced(self):
        shards = shard_batch(np.arange(10), 3)
        assert [len(s) for s in shards] == [4, 3, 3]

    def test_more_shards_than_samples_drops_empties(self):
        shards = shard_batch(np.arange(2), 4)
        assert [len(s) for s in shards] == [1, 1]

    def test_decomposition_independent_of_values(self):
        # Same length -> same split points, whatever the indices are.
        a = shard_batch(np.arange(7), 2)
        b = shard_batch(np.arange(100, 107), 2)
        assert [len(s) for s in a] == [len(s) for s in b]

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="num_shards"):
            shard_batch(np.arange(4), 0)


class TestBatchReport:
    def _report(self):
        return BatchReport(
            items=[
                BatchItem(name="good", result=object()),
                BatchItem(name="bad", result=None, error="ValueError: no"),
            ],
            jobs=2,
            total_seconds=1.0,
        )

    def test_results_filters_failures(self):
        report = self._report()
        assert len(report.results) == 1
        assert report.num_failed == 1

    def test_summary_lines_name_failures(self):
        lines = self._report().summary_lines()
        assert "designs=2 failed=1" in lines[0]
        assert any("failed[bad]" in line for line in lines[1:])


class TestBatchAnalyzer:
    def test_rejects_bad_jobs(self, trained_tiny_pipeline):
        with pytest.raises(ValueError):
            BatchAnalyzer(trained_tiny_pipeline, jobs=0)

    def test_parallel_matches_serial_bitwise(self, trained_tiny_pipeline):
        pipeline = trained_tiny_pipeline
        _, test_designs = pipeline.generate_designs()
        serial = [pipeline.analyze_design(d) for d in test_designs]
        report = BatchAnalyzer(pipeline, jobs=2).analyze_designs(test_designs)
        assert all(item.ok for item in report.items)
        for expected, item in zip(serial, report.items):
            np.testing.assert_array_equal(
                expected.predicted_drop, item.result.predicted_drop
            )
            assert item.result.diagnostics is not None

    def test_jobs_defaults_to_config(self, trained_tiny_pipeline):
        analyzer = BatchAnalyzer(trained_tiny_pipeline)
        assert analyzer.jobs == trained_tiny_pipeline.config.jobs


@pytest.fixture(scope="module")
def trained_tiny_pipeline():
    from repro.core.config import FusionConfig
    from repro.core.pipeline import IRFusionPipeline
    from repro.train.trainer import TrainConfig

    config = FusionConfig(
        pixels=16,
        num_fake=2,
        num_real_train=1,
        num_real_test=2,
        base_channels=4,
        depth=2,
        train=TrainConfig(epochs=1, batch_size=4),
        augment=False,
        oversample_fake=1,
        oversample_real=1,
    )
    pipeline = IRFusionPipeline(config)
    pipeline.train()
    return pipeline


class TestDatasetJobs:
    def test_parallel_build_matches_serial(self, fake_design):
        from repro.data.dataset import IRDropDataset
        from repro.data.synthetic import generate_design, make_fake_spec

        designs = [
            fake_design,
            generate_design(make_fake_spec("jobs-extra", seed=5)),
        ]
        serial = IRDropDataset.from_designs(designs, jobs=1)
        parallel = IRDropDataset.from_designs(designs, jobs=2)
        assert [s.name for s in parallel] == [s.name for s in serial]
        for a, b in zip(serial, parallel):
            np.testing.assert_array_equal(a.features.data, b.features.data)
            np.testing.assert_array_equal(a.label, b.label)

    def test_parallel_build_raises_on_bad_design(self, fake_design):
        import dataclasses

        from repro.data.dataset import IRDropDataset

        bad_spec = dataclasses.replace(fake_design.spec, name="broken")
        bad = dataclasses.replace(
            fake_design,
            spec=bad_spec,
            geometry=None,  # geometry access must blow up in the worker
        )
        with pytest.raises(RuntimeError, match="broken"):
            IRDropDataset.from_designs([fake_design, bad], jobs=2)


class TestConfigJobs:
    def test_jobs_validated(self):
        from repro.core.config import FusionConfig

        with pytest.raises(ValueError):
            FusionConfig(jobs=0)
        assert FusionConfig(jobs=3).jobs == 3
