"""Tests for greedy pad placement."""

import pytest

from repro.opt.pad_placement import greedy_pad_placement
from repro.solvers.powerrush import PowerRushSimulator


class TestGreedyPadPlacement:
    def test_adding_pads_reduces_worst_drop(self, real_design):
        baseline = PowerRushSimulator(tol=1e-10).simulate_grid(real_design.grid)
        result = greedy_pad_placement(
            real_design.netlist,
            budget_volts=baseline.worst_drop() * 0.01,  # unreachable target
            max_new_pads=2,
            max_candidates=8,
        )
        assert len(result.added_pads) >= 1
        assert result.improvement > 0
        history = result.worst_drop_history
        assert all(b < a for a, b in zip(history, history[1:]))

    def test_budget_met_stops_early(self, fake_design):
        baseline = PowerRushSimulator(tol=1e-10).simulate_grid(fake_design.grid)
        generous = baseline.worst_drop() * 2.0
        result = greedy_pad_placement(
            fake_design.netlist, budget_volts=generous, max_new_pads=3
        )
        assert result.met_budget
        assert result.added_pads == []

    def test_final_netlist_contains_new_pads(self, real_design):
        result = greedy_pad_placement(
            real_design.netlist,
            budget_volts=1e-6,
            max_new_pads=1,
            max_candidates=6,
        )
        original = len(real_design.netlist.voltage_sources)
        assert (
            len(result.final_netlist.voltage_sources)
            == original + len(result.added_pads)
        )

    def test_final_netlist_simulates_to_reported_drop(self, real_design):
        result = greedy_pad_placement(
            real_design.netlist,
            budget_volts=1e-6,
            max_new_pads=1,
            max_candidates=6,
        )
        report = PowerRushSimulator(tol=1e-10).simulate_netlist(
            result.final_netlist
        )
        assert report.worst_drop() == pytest.approx(
            result.worst_drop_history[-1], rel=1e-6
        )

    def test_pads_added_on_top_layer(self, real_design):
        from repro.spice.nodes import parse_node_name

        result = greedy_pad_placement(
            real_design.netlist,
            budget_volts=1e-6,
            max_new_pads=1,
            max_candidates=6,
        )
        top = max(real_design.grid.layers_present())
        for name in result.added_pads:
            assert parse_node_name(name).layer == top

    def test_validation(self, fake_design):
        with pytest.raises(ValueError):
            greedy_pad_placement(fake_design.netlist, budget_volts=0.0)
        with pytest.raises(ValueError):
            greedy_pad_placement(
                fake_design.netlist, budget_volts=0.1, max_new_pads=0
            )
        with pytest.raises(ValueError):
            greedy_pad_placement(
                fake_design.netlist, budget_volts=0.1, method="quantum"
            )

    def test_incremental_matches_legacy(self, real_design):
        """The engines must commit the same pads and report the same drops."""
        kwargs = dict(budget_volts=1e-6, max_new_pads=2, max_candidates=6)
        fast = greedy_pad_placement(
            real_design.netlist, method="incremental", **kwargs
        )
        slow = greedy_pad_placement(
            real_design.netlist, method="legacy", **kwargs
        )
        assert fast.added_pads == slow.added_pads
        assert fast.worst_drop_history == pytest.approx(
            slow.worst_drop_history, rel=1e-6
        )
