"""Tests for netlist short-collapsing."""

import numpy as np
import pytest

from repro.grid.netlist import PowerGrid
from repro.spice.parser import parse_spice
from repro.spice.preprocess import collapse_shorts, count_shorts


class TestCollapseShorts:
    def test_simple_short_merged(self):
        netlist = parse_spice(
            "R1 a b 0\nR2 b c 2\nI1 c 0 0.1\nV1 a 0 1.0\n"
        )
        collapsed = collapse_shorts(netlist)
        assert count_shorts(collapsed) == 0
        grid = PowerGrid.from_netlist(collapsed)
        assert grid.num_nodes == 2  # {a,b} merged + c

    def test_solution_matches_small_resistor_limit(self):
        """Collapsing a short == the limit of shrinking its resistance."""
        import scipy.sparse.linalg as sla

        from repro.mna.stamper import build_reduced_system

        shorted = parse_spice("R1 a b 0\nR2 b c 2\nI1 c 0 0.1\nV1 a 0 1.0\n")
        tiny = parse_spice("R1 a b 1e-9\nR2 b c 2\nI1 c 0 0.1\nV1 a 0 1.0\n")
        collapsed_grid = PowerGrid.from_netlist(collapse_shorts(shorted))
        tiny_grid = PowerGrid.from_netlist(tiny)

        sys_c = build_reduced_system(collapsed_grid)
        sys_t = build_reduced_system(tiny_grid)
        v_c = sys_c.scatter(
            np.atleast_1d(sla.spsolve(sys_c.matrix.tocsc(), sys_c.rhs))
        )
        v_t = sys_t.scatter(
            np.atleast_1d(sla.spsolve(sys_t.matrix.tocsc(), sys_t.rhs))
        )
        assert v_c[collapsed_grid.index_of("c")] == pytest.approx(
            v_t[tiny_grid.index_of("c")], abs=1e-6
        )

    def test_chain_of_shorts(self):
        netlist = parse_spice(
            "R1 a b 0\nR2 b c 0\nR3 c d 1\nV1 a 0 1\nI1 d 0 0.1\n"
        )
        grid = PowerGrid.from_netlist(collapse_shorts(netlist))
        assert grid.num_nodes == 2

    def test_parallel_becomes_self_loop_dropped(self):
        netlist = parse_spice(
            "R1 a b 0\nR2 a b 5\nR3 b c 1\nV1 a 0 1\nI1 c 0 0.1\n"
        )
        collapsed = collapse_shorts(netlist)
        # R2 became a self-loop after contraction and is dropped
        assert [r.name for r in collapsed.resistors] == ["R3"]

    def test_sources_renamed(self):
        netlist = parse_spice(
            "R1 a b 0\nR2 b c 1\nI1 b 0 0.1\nV1 a 0 1\n"
        )
        collapsed = collapse_shorts(netlist)
        rep = collapsed.voltage_sources[0].node_pos
        assert collapsed.current_sources[0].node_from == rep

    def test_ground_stays_ground(self):
        netlist = parse_spice("R1 a 0 0\nR2 a b 1\nV1 b 0 1\n")
        collapsed = collapse_shorts(netlist)
        # node 'a' merged into ground; R2 must now reference ground
        assert collapsed.resistors[0].node_a in ("0", "b")
        assert "0" in (
            collapsed.resistors[0].node_a,
            collapsed.resistors[0].node_b,
        )

    def test_no_shorts_is_identity(self, tiny_netlist):
        collapsed = collapse_shorts(tiny_netlist)
        assert collapsed.resistors == tiny_netlist.resistors
        assert collapsed.current_sources == tiny_netlist.current_sources

    def test_count_shorts(self):
        netlist = parse_spice("R1 a b 0\nR2 b c 1\nR3 c d 0\nV1 a 0 1\n")
        assert count_shorts(netlist) == 2
