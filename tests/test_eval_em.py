"""Tests for the wire-current (EM) checker."""

import numpy as np
import pytest

from repro.eval.em import check_wire_currents
from repro.grid.netlist import PowerGrid
from repro.solvers.powerrush import PowerRushSimulator
from repro.spice.parser import parse_spice


@pytest.fixture(scope="module")
def solved(fake_design):
    report = PowerRushSimulator(tol=1e-12).simulate_grid(fake_design.grid)
    return fake_design.grid, report.voltages


class TestCheckWireCurrents:
    def test_generous_limit_passes(self, solved):
        grid, voltages = solved
        report = check_wire_currents(grid, voltages, limit_amps=1e3)
        assert report.passed
        assert "PASS" in report.summary()
        assert report.worst_current > 0

    def test_tight_limit_fails(self, solved):
        grid, voltages = solved
        report = check_wire_currents(grid, voltages, limit_amps=1e-9)
        assert not report.passed
        assert "FAIL" in report.summary()
        assert report.violations[0].overdrive >= report.violations[-1].overdrive

    def test_violation_fields(self):
        grid = PowerGrid.from_netlist(
            parse_spice("R1 a b 2\nI1 b 0 0.5\nV1 a 0 1\n")
        )
        report_sim = PowerRushSimulator(tol=1e-12).simulate_grid(grid)
        report = check_wire_currents(grid, report_sim.voltages, limit_amps=0.1)
        assert len(report.violations) == 1
        violation = report.violations[0]
        assert violation.wire_name == "R1"
        assert violation.current == pytest.approx(0.5, rel=1e-6)
        assert violation.overdrive == pytest.approx(5.0, rel=1e-6)

    def test_layer_scaling_relaxes_upper_metal(self, solved):
        grid, voltages = solved
        base = check_wire_currents(grid, voltages, limit_amps=1e-3)
        relaxed = check_wire_currents(
            grid,
            voltages,
            limit_amps=1e-3,
            layer_scale={1: 1.0, 2: 10.0, 3: 10.0},
        )
        assert len(relaxed.violations) <= len(base.violations)

    def test_limit_validation(self, solved):
        grid, voltages = solved
        with pytest.raises(ValueError):
            check_wire_currents(grid, voltages, limit_amps=0.0)

    def test_worst_current_is_max_branch(self, solved):
        from repro.mna.post import branch_currents

        grid, voltages = solved
        report = check_wire_currents(grid, voltages, limit_amps=1e3)
        assert report.worst_current == pytest.approx(
            np.abs(branch_currents(grid, voltages)).max()
        )
