"""Tests for the persistent spawn-safe worker pool and its chaos paths."""

import threading
import time

import numpy as np
import pytest

from repro.core.batch import parallel_map, parallel_map_ex
from repro.core.pool import (
    PoolOptions,
    PoolUnusableError,
    TransientTaskError,
    WorkerPool,
    backoff_delay,
    get_pool,
)
from repro.obs import counters_delta, metrics_snapshot, reset_metrics, trace
from repro.testing.faults import WorkerFaultPlan


def _square(x):
    return x * x


def _boom(x):
    if x == 1:
        raise ValueError(f"bad item {x}")
    return x


def _nap(seconds):
    time.sleep(seconds)
    return seconds


def _warm_pool(jobs: int = 2) -> None:
    """Make sure the shared pool's workers are up (cold spawn on this
    box imports numpy/scipy and can take seconds — tests that assert on
    timing must not pay it inside the measured window)."""
    outcomes, _ = parallel_map_ex(_square, [0, 1, 2, 3], jobs)
    assert [o.result for o in outcomes] == [0, 1, 4, 9]


class TestPoolBasics:
    def test_results_in_submission_order(self):
        outcomes, degraded = parallel_map_ex(_square, list(range(9)), 2)
        assert [o.result for o in outcomes] == [k * k for k in range(9)]
        assert not degraded
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_errors_carry_traceback_and_attempts(self):
        outcomes, _ = parallel_map_ex(_boom, [0, 1, 2], 2)
        bad = outcomes[1]
        assert not bad.ok and bad.quarantine is None
        assert bad.error.startswith("ValueError: bad item 1")
        assert "Traceback" in bad.traceback
        assert "_boom" in bad.traceback
        assert bad.attempts == 1  # deterministic errors are not retried

    def test_parallelizes_from_non_main_thread(self):
        _warm_pool()
        box = {}

        def run():
            box["out"] = parallel_map_ex(_square, [2, 3, 4, 5], 2)

        worker = threading.Thread(target=run)
        worker.start()
        worker.join(timeout=60)
        assert not worker.is_alive()
        outcomes, degraded = box["out"]
        assert [o.result for o in outcomes] == [4, 9, 16, 25]
        assert not degraded  # PR 5 forced this case to serial

    def test_unpicklable_fn_falls_back_not_raises(self):
        marker = object()

        def closure(x):  # closures cannot cross a spawn boundary
            assert marker is not None
            return x + 1

        outcomes, _ = parallel_map_ex(closure, [1, 2, 3], 2)
        assert [o.result for o in outcomes] == [2, 3, 4]

    def test_explicit_spawn_mode_with_unpicklable_degrades_serial(self):
        sink = []

        def closure(x):
            sink.append(x)
            return x

        before = metrics_snapshot()
        outcomes, degraded = parallel_map_ex(
            closure, [1, 2, 3], 2, mode="spawn"
        )
        assert degraded
        assert [o.result for o in outcomes] == [1, 2, 3]
        delta = counters_delta(before)["counters"]
        assert delta.get("batch.serial_fallbacks", 0) >= 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown pool mode"):
            parallel_map_ex(_square, [1, 2], 2, mode="threads")

    def test_pool_raises_unusable_for_unpicklable(self):
        pool = get_pool(2)
        with pytest.raises(PoolUnusableError, match="not picklable"):
            pool.map(lambda x: x, [1, 2], jobs=2)


class TestChaosPaths:
    def test_sigkilled_worker_respawned_and_item_retried(self):
        _warm_pool()
        plan = WorkerFaultPlan.from_spec("kill@2x1")
        before = metrics_snapshot()
        outcomes, degraded = parallel_map_ex(
            _square, list(range(6)), 2, fault_plan=plan, retries=2
        )
        assert not degraded
        assert [o.result for o in outcomes] == [k * k for k in range(6)]
        assert outcomes[2].attempts == 2  # died once, succeeded on retry
        delta = counters_delta(before)["counters"]
        assert delta.get("pool.workers_respawned", 0) >= 1
        assert delta.get("task.retries", 0) >= 1

    def test_flaky_once_succeeds_on_retry(self):
        plan = WorkerFaultPlan(flaky={1: frozenset({1})})
        outcomes, _ = parallel_map_ex(
            _square, [5, 6, 7], 2, fault_plan=plan, retries=2
        )
        assert [o.result for o in outcomes] == [25, 36, 49]
        assert outcomes[1].attempts == 2
        assert outcomes[1].injected_faults == []  # raise, not survivable

    def test_transient_exhaustion_quarantines(self):
        plan = WorkerFaultPlan(flaky={0: None})  # every attempt
        before = metrics_snapshot()
        outcomes, _ = parallel_map_ex(
            _square, [1, 2], 2, fault_plan=plan, retries=1
        )
        record = outcomes[0].quarantine
        assert record is not None
        assert record.reason == "transient"
        assert record.attempts == 2  # retries + 1
        assert "injected flaky failure" in record.error
        assert record.elapsed_seconds >= 0.0
        assert outcomes[1].result == 4
        delta = counters_delta(before)["counters"]
        assert delta.get("task.quarantined", 0) >= 1

    def test_hung_worker_hits_timeout_then_quarantine(self):
        _warm_pool()
        plan = WorkerFaultPlan.from_spec("hang@0")
        before = metrics_snapshot()
        start = time.monotonic()
        outcomes, _ = parallel_map_ex(
            _square,
            [9, 10, 11],
            2,
            fault_plan=plan,
            task_timeout=1.0,
            retries=0,
        )
        elapsed = time.monotonic() - start
        record = outcomes[0].quarantine
        assert record is not None and record.reason == "timeout"
        assert "task timeout" in record.error
        assert [o.result for o in outcomes[1:]] == [100, 121]
        assert elapsed < 30.0  # parent never waits for the 3600 s sleep
        delta = counters_delta(before)["counters"]
        assert delta.get("task.timeouts", 0) >= 1

    def test_poison_item_quarantined_after_retry_budget(self):
        _warm_pool()
        plan = WorkerFaultPlan.from_spec("kill@1")  # every attempt
        outcomes, _ = parallel_map_ex(
            _square, [1, 2, 3], 2, fault_plan=plan, retries=2
        )
        record = outcomes[1].quarantine
        assert record is not None
        assert record.reason == "crash"
        assert record.attempts == 3
        assert "worker died" in record.error
        # The poison item never takes healthy neighbours down with it.
        assert outcomes[0].result == 1 and outcomes[2].result == 9

    def test_batch_deadline_quarantines_unfinished(self):
        _warm_pool()
        start = time.monotonic()
        outcomes, _ = parallel_map_ex(
            _nap, [3600.0, 3600.0, 3600.0], 2, deadline=1.5, retries=0
        )
        elapsed = time.monotonic() - start
        assert elapsed < 30.0
        assert all(o.quarantine is not None for o in outcomes)
        assert {o.quarantine.reason for o in outcomes} == {"deadline"}

    def test_slow_item_survives_generous_timeout(self):
        _warm_pool()
        plan = WorkerFaultPlan.from_spec("slow@0:0.3")
        outcomes, _ = parallel_map_ex(
            _square, [4, 5], 2, fault_plan=plan, task_timeout=30.0
        )
        assert [o.result for o in outcomes] == [16, 25]
        assert outcomes[0].injected_faults == ["slow"]


class TestTelemetry:
    def test_traced_batch_ships_item_and_attempt_spans(self):
        _warm_pool()
        plan = WorkerFaultPlan(flaky={1: frozenset({1})})
        reset_metrics()
        with trace("pool_batch") as tracer:
            outcomes, _ = parallel_map_ex(
                _square, [1, 2, 3], 2, fault_plan=plan, retries=1
            )
        assert [o.result for o in outcomes] == [1, 4, 9]
        items = [s for s in tracer.root.iter_spans() if s.name == "item"]
        attempts = [
            s for s in tracer.root.iter_spans() if s.name == "task_attempt"
        ]
        # The flaky fault fires before the item's traced body, so the
        # failed attempt ships no "item" span — the parent-side
        # "task_attempt" span is what accounts for it.
        assert len(items) == 3
        assert len(attempts) == 4
        assert sorted(s.attrs["index"] for s in items) == [0, 1, 2]
        outcomes_seen = sorted(s.attrs["outcome"] for s in attempts)
        assert outcomes_seen == ["ok", "ok", "ok", "transient_error"]
        reset_metrics()


class TestPoolLifecycle:
    def test_idle_shutdown_and_lazy_restart(self):
        pool = WorkerPool(
            max_workers=2, options=PoolOptions(idle_timeout=0.4)
        )
        try:
            result = pool.map(_square, [1, 2, 3], jobs=2)
            assert [o.result for o in result.outcomes] == [1, 4, 9]
            deadline = time.monotonic() + 30.0
            while pool.worker_pids and time.monotonic() < deadline:
                time.sleep(0.1)
            assert pool.worker_pids == []  # idle supervisor stopped them
            # The next map lazily restarts the runtime.
            result = pool.map(_square, [4, 5], jobs=2)
            assert [o.result for o in result.outcomes] == [16, 25]
        finally:
            pool.shutdown()

    def test_keep_alive_pins_idle_workers(self):
        pool = WorkerPool(
            max_workers=1, options=PoolOptions(idle_timeout=0.2)
        )
        try:
            with pool.keep_alive():
                result = pool.map(_square, [2], jobs=1)
                assert [o.result for o in result.outcomes] == [4]
                pids = pool.worker_pids
                assert pids  # workers are up
                time.sleep(1.0)  # several idle_timeout periods
                assert pool.worker_pids == pids  # still the same workers
            # Once released, the idle countdown resumes and retires them.
            deadline = time.monotonic() + 30.0
            while pool.worker_pids and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.worker_pids == []
        finally:
            pool.shutdown()

    def test_keep_alive_stacks_and_release_is_idempotent(self):
        pool = WorkerPool(
            max_workers=1, options=PoolOptions(idle_timeout=0.2)
        )
        try:
            first = pool.keep_alive()
            second = pool.keep_alive()
            first.release()
            first.release()  # double release must not release `second`
            pool.map(_square, [3], jobs=1)
            time.sleep(0.8)
            assert pool.worker_pids  # second handle still pins the pool
            second.release()
        finally:
            pool.shutdown()

    def test_keep_alive_on_shut_down_pool_raises(self):
        pool = WorkerPool(max_workers=1)
        pool.shutdown()
        with pytest.raises(PoolUnusableError, match="shut down"):
            pool.keep_alive()

    def test_idle_retirement_never_drops_racing_work(self):
        """Regression: a map() landing exactly as the supervisor
        idle-retires must run on the successor runtime, not lose its
        queued work to the retiring thread's teardown.

        Pre-fix, the old supervisor's ``finally`` reset ``_running`` and
        closed the wake pipe unconditionally — clobbering a successor
        supervisor started in the gap, whose freshly queued job then
        stalled (PoolUnusableError) or hung.  A tiny idle timeout makes
        the window hit constantly.
        """
        pool = WorkerPool(
            max_workers=1, options=PoolOptions(idle_timeout=0.01)
        )
        errors: list[str] = []

        def hammer(offset: int) -> None:
            for k in range(30):
                time.sleep(0.005 * ((offset + k) % 4))
                try:
                    result = pool.map(_square, [offset + k], jobs=1)
                except PoolUnusableError as exc:
                    errors.append(f"unusable at {offset + k}: {exc}")
                    return
                values = [o.result for o in result.outcomes]
                if values != [(offset + k) ** 2]:
                    errors.append(f"bad result at {offset + k}: {values}")

        try:
            threads = [
                threading.Thread(target=hammer, args=(100 * t,))
                for t in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert errors == []
        finally:
            pool.shutdown()

    def test_shutdown_then_map_raises_unusable(self):
        pool = WorkerPool(max_workers=1)
        pool.shutdown()
        with pytest.raises(PoolUnusableError, match="shut down"):
            pool.map(_square, [1], jobs=1)

    def test_backoff_delay_is_deterministic_and_capped(self):
        first = backoff_delay(1, index=3, base=0.05, cap=2.0)
        assert first == backoff_delay(1, index=3, base=0.05, cap=2.0)
        assert 0.025 <= first <= 0.075  # base x jitter in [0.5, 1.5)
        huge = backoff_delay(30, index=3, base=0.05, cap=2.0)
        assert huge <= 2.0 * 1.5


class TestWorkerFaultPlanSpec:
    def test_from_spec_round_trip(self):
        plan = WorkerFaultPlan.from_spec(
            "kill@2x1,hang@5,flaky@0x1+2,slow@3:0.5"
        )
        assert plan.kill == {2: frozenset({1})}
        assert plan.hang == {5: None}
        assert plan.flaky == {0: frozenset({1, 2})}
        assert plan.slow == {3: 0.5}

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown chaos fault"):
            WorkerFaultPlan.from_spec("explode@1")
        with pytest.raises(ValueError, match="bad chaos entry"):
            WorkerFaultPlan.from_spec("kill")

    def test_flaky_raises_transient(self):
        plan = WorkerFaultPlan(flaky={4: None})
        with pytest.raises(TransientTaskError, match="item 4"):
            plan.apply(4, attempt=1)
        assert plan.apply(3, attempt=1) is None

    def test_attempt_filter(self):
        plan = WorkerFaultPlan(flaky={4: frozenset({1})})
        with pytest.raises(TransientTaskError):
            plan.apply(4, attempt=1)
        assert plan.apply(4, attempt=2) is None


@pytest.fixture(scope="module")
def trained_tiny_pipeline():
    from repro.core.config import FusionConfig
    from repro.core.pipeline import IRFusionPipeline
    from repro.train.trainer import TrainConfig

    config = FusionConfig(
        pixels=16,
        num_fake=2,
        num_real_train=1,
        num_real_test=2,
        base_channels=4,
        depth=2,
        train=TrainConfig(epochs=1, batch_size=4),
        augment=False,
        oversample_fake=1,
        oversample_real=1,
    )
    pipeline = IRFusionPipeline(config)
    pipeline.train()
    return pipeline


class TestBatchAnalyzerChaos:
    def test_sixteen_item_batch_survives_kill_hang_flaky(
        self, trained_tiny_pipeline, monkeypatch
    ):
        # The ISSUE acceptance scenario: a 16-item BatchAnalyzer run
        # under worker SIGKILL, a hang past the task timeout, and a
        # flaky-once item.  The parent must never deadlock, every item
        # must end as a result, a captured error, or a QuarantineRecord,
        # and retried-transient items must still succeed.
        _warm_pool()
        pipeline = trained_tiny_pipeline
        _, test_designs = pipeline.generate_designs()
        designs = (test_designs * 8)[:16]
        assert len(designs) == 16
        monkeypatch.setenv("REPRO_CHAOS", "kill@3x1,hang@7,flaky@11x1")
        analyzer = __import__(
            "repro.core.batch", fromlist=["BatchAnalyzer"]
        ).BatchAnalyzer(
            pipeline, jobs=2, task_timeout=8.0, retries=1
        )
        report = analyzer.analyze_designs(designs)
        assert len(report.items) == 16
        for position, item in enumerate(report.items):
            if position == 7:
                assert item.quarantined
                assert item.quarantine.reason == "timeout"
                assert item.quarantine.attempts == 2
            else:
                assert item.ok, f"item {position}: {item.error}"
        assert report.items[3].attempts == 2  # SIGKILL'd once, retried
        assert report.items[11].attempts == 2  # flaky once, retried
        assert report.num_quarantined == 1
        assert any("quarantined" in note for note in report.notes)
        assert any("retries" in note for note in report.notes)
        lines = report.summary_lines()
        assert any("quarantined[" in line for line in lines)

    def test_fork_and_pool_results_bitwise_identical(
        self, trained_tiny_pipeline
    ):
        # Fault-free batches must not depend on the execution substrate:
        # the legacy fork engine and the spawn pool run the same
        # deterministic computation on the same machine.
        pipeline = trained_tiny_pipeline
        _, test_designs = pipeline.generate_designs()
        forked, fork_degraded = parallel_map_ex(
            pipeline.analyze_design, test_designs, 2, mode="fork"
        )
        pooled, pool_degraded = parallel_map_ex(
            pipeline.analyze_design, test_designs, 2, mode="spawn"
        )
        assert not fork_degraded and not pool_degraded
        for fork_out, pool_out in zip(forked, pooled):
            assert fork_out.ok and pool_out.ok
            np.testing.assert_array_equal(
                fork_out.result.predicted_drop, pool_out.result.predicted_drop
            )
            if fork_out.result.rough_drop is not None:
                np.testing.assert_array_equal(
                    fork_out.result.rough_drop, pool_out.result.rough_drop
                )


class TestSerialFallbackVisibility:
    def test_nested_worker_call_counts_serial_fallback(self, monkeypatch):
        from repro.core.pool import WORKER_ENV

        monkeypatch.setenv(WORKER_ENV, "1")
        before = metrics_snapshot()
        outcomes, degraded = parallel_map_ex(_square, [1, 2, 3], 2)
        assert degraded
        assert [o.result for o in outcomes] == [1, 4, 9]
        delta = counters_delta(before)["counters"]
        assert delta.get("batch.serial_fallbacks", 0) >= 1
        assert delta.get("batch.serial_fallbacks.nested_in_worker", 0) >= 1
