"""Lint engine: one seeded violation per rule, plus suppression paths."""

from pathlib import Path

import pytest

from repro.analysis.engine import AnalysisEngine
from repro.analysis.__main__ import main as analysis_main

REPO_ROOT = Path(__file__).resolve().parent.parent

ALL_RULES = {
    "runtime-assert",
    "unseeded-rng",
    "wall-clock",
    "unguarded-division",
    "fp64-narrowing",
    "fork-unsafe-closure",
    "dead-import",
    "import-cycle",
}


def _write(root: Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


@pytest.fixture
def seeded_tree(tmp_path: Path) -> Path:
    """A fake repo with exactly one violation of every rule."""
    _write(
        tmp_path,
        "src/repro/features/bad.py",
        "import math\n"  # dead-import
        "import time\n"
        "import numpy as np\n"
        "\n"
        "\n"
        "def f(x):\n"
        "    assert x.size > 0\n"  # runtime-assert
        "    rng = np.random.default_rng()\n"  # unseeded-rng
        "    started = time.time()\n"  # wall-clock
        "    return x / x.sum(), rng, started\n",  # unguarded-division
    )
    _write(
        tmp_path,
        "src/repro/nn/functional.py",
        "import numpy as np\n"
        "\n"
        "\n"
        "def kernel(x):\n"
        "    if x.dtype == np.float64:\n"
        "        x = x.astype(np.float32)\n"  # fp64-narrowing
        "    return x\n",
    )
    _write(
        tmp_path,
        "src/repro/core/runner.py",
        "def run(parallel_map, items):\n"
        "    out, _ = parallel_map(lambda d: d + 1, items, 2)\n"  # fork-unsafe
        "    return out\n",
    )
    _write(
        tmp_path,
        "src/repro/a.py",
        "from repro.b import g\n\n\ndef f():\n    return g\n",  # cycle a->b
    )
    _write(
        tmp_path,
        "src/repro/b.py",
        "from repro.a import f\n\n\ndef g():\n    return f\n",  # cycle b->a
    )
    return tmp_path


def test_every_rule_fires_once_on_the_seeded_tree(seeded_tree):
    report = AnalysisEngine(seeded_tree).run(["src"])
    fired = {f.rule for f in report.findings}
    assert fired == ALL_RULES
    # exactly one finding per rule
    assert len(report.findings) == len(ALL_RULES)


def test_strict_cli_fails_on_seeded_tree(seeded_tree):
    rc = analysis_main(
        ["--root", str(seeded_tree), "src", "--strict", "--no-models"]
    )
    assert rc == 1


def test_strict_cli_passes_on_clean_tree(tmp_path):
    _write(
        tmp_path,
        "src/repro/clean.py",
        "def double(x):\n    return 2 * x\n",
    )
    rc = analysis_main(
        ["--root", str(tmp_path), "src", "--strict", "--no-models"]
    )
    assert rc == 0


def test_baseline_grandfathers_existing_findings(seeded_tree):
    engine = AnalysisEngine(seeded_tree)
    first = engine.run(["src"])
    baseline = seeded_tree / ".analysis-baseline"
    engine.write_baseline(baseline, first.findings)

    second = engine.run(["src"], baseline_path=baseline)
    assert second.ok
    assert len(second.grandfathered) == len(first.findings)
    assert second.unused_baseline == []


def test_baseline_still_fails_new_findings(seeded_tree):
    engine = AnalysisEngine(seeded_tree)
    baseline = seeded_tree / ".analysis-baseline"
    engine.write_baseline(baseline, engine.run(["src"]).findings)

    _write(
        seeded_tree,
        "src/repro/fresh.py",
        "def g(x):\n    assert x\n    return x\n",
    )
    report = engine.run(["src"], baseline_path=baseline)
    assert [f.rule for f in report.findings] == ["runtime-assert"]
    assert report.findings[0].path == "src/repro/fresh.py"


def test_stale_baseline_entries_are_reported(seeded_tree):
    engine = AnalysisEngine(seeded_tree)
    baseline = seeded_tree / ".analysis-baseline"
    baseline.write_text("runtime-assert:src/gone.py:deadbeefdeadbeef\n")
    report = engine.run(["src"], baseline_path=baseline)
    assert report.unused_baseline == [
        "runtime-assert:src/gone.py:deadbeefdeadbeef"
    ]


def test_inline_pragma_suppresses_a_rule(tmp_path):
    _write(
        tmp_path,
        "src/repro/ok.py",
        "def f(x):\n"
        "    assert x  # repro: allow(runtime-assert) — invariant, not input\n"
        "    return x\n",
    )
    report = AnalysisEngine(tmp_path).run(["src"])
    assert report.ok
    assert [f.rule for f in report.suppressed] == ["runtime-assert"]


def test_fingerprints_survive_line_moves(seeded_tree):
    engine = AnalysisEngine(seeded_tree)
    before = {
        f.fingerprint for f in engine.run(["src"]).findings
    }
    # Prepend a comment block: every lineno changes, fingerprints must not.
    target = seeded_tree / "src/repro/features/bad.py"
    target.write_text("# moved\n# down\n" + target.read_text())
    after = {f.fingerprint for f in engine.run(["src"]).findings}
    assert before == after


def test_repo_is_clean_under_strict():
    rc = analysis_main(
        ["--root", str(REPO_ROOT), "src", "tests", "--strict", "--no-models"]
    )
    assert rc == 0


class TestForkSafetyPoolTransport:
    """The fork-safety rule's pool-transport extensions."""

    @staticmethod
    def _run(tmp_path: Path, source: str):
        _write(tmp_path, "src/repro/core/runner.py", source)
        report = AnalysisEngine(tmp_path).run(["src"])
        return [
            f for f in report.findings if f.rule == "fork-unsafe-closure"
        ]

    def test_parallel_map_ex_lambda_flagged(self, tmp_path):
        findings = self._run(
            tmp_path,
            "def run(parallel_map_ex, items):\n"
            "    out, _ = parallel_map_ex(lambda d: d + 1, items, 2)\n"
            "    return out\n",
        )
        assert len(findings) == 1
        assert "parallel_map_ex" in findings[0].message

    def test_module_ndarray_capture_flagged(self, tmp_path):
        findings = self._run(
            tmp_path,
            "import numpy as np\n"
            "\n"
            "TABLE = np.zeros((512, 512))\n"
            "\n"
            "\n"
            "def worker(item):\n"
            "    return TABLE[item]\n"
            "\n"
            "\n"
            "def run(parallel_map, items):\n"
            "    out, _ = parallel_map(worker, items, 2)\n"
            "    return out\n",
        )
        assert len(findings) == 1
        assert "TABLE" in findings[0].message
        assert "shared-memory" in findings[0].message

    def test_array_passed_per_item_not_flagged(self, tmp_path):
        findings = self._run(
            tmp_path,
            "import numpy as np\n"
            "\n"
            "TABLE = np.zeros((512, 512))\n"
            "\n"
            "\n"
            "def worker(item):\n"
            "    name, table = item\n"
            "    return table[0]\n"
            "\n"
            "\n"
            "def run(parallel_map, items):\n"
            "    out, _ = parallel_map(worker, [(n, TABLE) for n in items], 2)\n"
            "    return out\n",
        )
        assert findings == []

    def test_non_array_module_constant_not_flagged(self, tmp_path):
        findings = self._run(
            tmp_path,
            "SCALE = 2.5\n"
            "NAMES = sorted(['a', 'b'])\n"
            "\n"
            "\n"
            "def worker(item):\n"
            "    return item * SCALE, NAMES\n"
            "\n"
            "\n"
            "def run(parallel_map, items):\n"
            "    out, _ = parallel_map(worker, items, 2)\n"
            "    return out\n",
        )
        assert findings == []
