"""Integration tests for the end-to-end pipeline."""

import numpy as np
import pytest

from repro.core.config import FusionConfig
from repro.core.pipeline import IRFusionPipeline
from repro.features.fusion import FeatureConfig
from repro.train.trainer import TrainConfig


@pytest.fixture(scope="module")
def tiny_config():
    return FusionConfig(
        pixels=16,
        num_fake=2,
        num_real_train=1,
        num_real_test=1,
        base_channels=4,
        depth=2,
        train=TrainConfig(epochs=2, batch_size=4),
        augment=False,
        oversample_fake=1,
        oversample_real=1,
    )


@pytest.fixture(scope="module")
def trained(tiny_config):
    pipeline = IRFusionPipeline(tiny_config)
    pipeline.train()
    return pipeline


class TestDatasets:
    def test_design_split(self, trained, tiny_config):
        train, test = trained.generate_designs()
        assert len(train) == tiny_config.num_fake + tiny_config.num_real_train
        assert len(test) == tiny_config.num_real_test
        assert all(not d.is_fake for d in test)

    def test_designs_cached(self, trained):
        assert trained.generate_designs() is trained.generate_designs()

    def test_prepare_training_set_factors(self, tiny_config):
        pipeline = IRFusionPipeline(
            tiny_config.with_(augment=True, oversample_fake=2, oversample_real=5)
        )
        train_raw, _ = pipeline.build_datasets()
        prepared = pipeline.prepare_training_set(train_raw)
        fakes = sum(1 for s in prepared if s.is_fake)
        reals = len(prepared) - fakes
        assert fakes == 2 * 4 * 2  # designs x rotations x oversample
        assert reals == 1 * 4 * 5


class TestTraining:
    def test_history_recorded(self, trained, tiny_config):
        assert trained.trainer is not None
        assert trained.model is not None

    def test_predict_sample(self, trained):
        _, test = trained.build_datasets()
        prediction = trained.predict_sample(test[0])
        assert prediction.shape == test[0].label.shape

    def test_untrained_pipeline_raises(self, tiny_config):
        pipeline = IRFusionPipeline(tiny_config)
        with pytest.raises(RuntimeError):
            pipeline.predict_sample(None)


class TestAnalyze:
    def test_analyze_design(self, trained):
        _, test_designs = trained.generate_designs()
        result = trained.analyze_design(test_designs[0])
        assert result.predicted_drop.shape == test_designs[0].geometry.shape
        assert result.rough_drop is not None
        assert result.report is not None
        assert result.total_seconds > 0
        assert result.worst_predicted_drop() > 0

    def test_analyze_netlist_roundtrip(self, trained):
        _, test_designs = trained.generate_designs()
        result = trained.analyze_netlist(test_designs[0].netlist)
        direct = trained.analyze_design(test_designs[0])
        assert result.predicted_drop.shape == direct.predicted_drop.shape
        assert np.allclose(result.predicted_drop, direct.predicted_drop, atol=1e-9)

    def test_analyze_text(self, trained):
        from repro.spice.writer import netlist_to_string

        _, test_designs = trained.generate_designs()
        text = netlist_to_string(test_designs[0].netlist)
        result = trained.analyze_text(text)
        assert result.predicted_drop.max() > 0

    def test_diagnostics_carry_span_tree(self, trained):
        from repro.obs import Span

        _, test_designs = trained.generate_designs()
        result = trained.analyze_design(test_designs[0])
        assert result.diagnostics.trace is not None
        root = Span.from_dict(result.diagnostics.trace)
        assert root.name == "analyze"
        assert {c.name for c in root.children} >= {
            "solve", "features", "inference",
        }
        assert any("trace:" in line for line in result.diagnostics.summary_lines())

    def test_legacy_seconds_equal_span_durations(self, trained):
        from repro.obs import Span

        _, test_designs = trained.generate_designs()
        result = trained.analyze_design(test_designs[0])
        root = Span.from_dict(result.diagnostics.trace)
        assert result.solver_seconds == pytest.approx(
            root.find("solve").duration, rel=1e-9
        )
        assert result.feature_seconds == pytest.approx(
            root.find("features").duration, rel=1e-9
        )
        assert result.model_seconds == pytest.approx(
            root.find("inference").duration, rel=1e-9
        )

    def test_stage_spans_cover_analyze_wall_time(self, trained):
        from repro.obs import Span

        _, test_designs = trained.generate_designs()
        result = trained.analyze_design(test_designs[0])
        root = Span.from_dict(result.diagnostics.trace)
        covered = (
            root.total("solve")
            + root.total("features")
            + root.total("inference")
        )
        assert covered >= 0.9 * root.duration

    def test_analyze_without_numerical_stage(self, tiny_config):
        config = tiny_config.with_(
            features=FeatureConfig(use_numerical=False)
        )
        pipeline = IRFusionPipeline(config)
        pipeline.train()
        _, test_designs = pipeline.generate_designs()
        result = pipeline.analyze_design(test_designs[0])
        assert result.rough_drop is None
        assert result.report is None
        assert result.solver_seconds == 0.0


class TestPersistence:
    def test_save_load_roundtrip(self, trained, tiny_config, tmp_path):
        path = tmp_path / "fusion.npz"
        trained.save_model(path)
        _, test = trained.build_datasets()
        expected = trained.predict_sample(test[0])

        fresh = IRFusionPipeline(tiny_config)
        fresh.load_model(path, in_channels=len(test.channels))
        restored = fresh.predict_sample(test[0])
        assert np.allclose(expected, restored)

    def test_save_untrained_rejected(self, tiny_config, tmp_path):
        with pytest.raises(RuntimeError):
            IRFusionPipeline(tiny_config).save_model(tmp_path / "x.npz")


class TestMixedBudgetTraining:
    def test_mix_multiplies_training_set(self, tiny_config):
        config = tiny_config.with_(solver_iteration_mix=(1, 3))
        pipeline = IRFusionPipeline(config)
        train, test = pipeline.build_datasets()
        single = IRFusionPipeline(tiny_config)
        train_single, _ = single.build_datasets()
        assert len(train) == 2 * len(train_single)
        # test set is unaffected by the mix
        assert len(test) == len(tiny_config.num_real_test * [None])

    def test_mix_samples_have_different_roughness(self, tiny_config):
        import numpy as np

        config = tiny_config.with_(solver_iteration_mix=(1, 8))
        pipeline = IRFusionPipeline(config)
        train, _ = pipeline.build_datasets()
        half = len(train) // 2
        rough_1 = train[0].rough_label
        rough_8 = train[half].rough_label
        assert train[0].name == train[half].name  # same design
        err_1 = np.abs(rough_1 - train[0].label).mean()
        err_8 = np.abs(rough_8 - train[half].label).mean()
        assert err_8 < err_1
