"""Unit tests for model checkpointing."""

import numpy as np
import pytest

from repro.nn.containers import Sequential
from repro.nn.layers import Conv2d, ReLU
from repro.nn.module import Module
from repro.nn.serialize import load_state, save_state


def test_save_load_roundtrip(tmp_path, rng):
    a = Sequential(Conv2d(2, 3, 3, rng=np.random.default_rng(1)), ReLU())
    b = Sequential(Conv2d(2, 3, 3, rng=np.random.default_rng(2)), ReLU())
    path = tmp_path / "model.npz"
    save_state(a, path)
    load_state(b, path)
    x = rng.standard_normal((1, 2, 4, 4))
    assert np.allclose(a(x), b(x))


def test_save_parameterless_module_rejected(tmp_path):
    class Empty(Module):
        pass

    with pytest.raises(ValueError):
        save_state(Empty(), tmp_path / "empty.npz")


def test_load_into_wrong_architecture_rejected(tmp_path, rng):
    a = Sequential(Conv2d(2, 3, 3, rng=rng))
    b = Sequential(Conv2d(2, 4, 3, rng=rng))
    path = tmp_path / "model.npz"
    save_state(a, path)
    with pytest.raises(ValueError):
        load_state(b, path)


def test_full_model_roundtrip(tmp_path, rng):
    from repro.models import IRFusionNet

    a = IRFusionNet(in_channels=5, base_channels=4, depth=2, seed=1)
    b = IRFusionNet(in_channels=5, base_channels=4, depth=2, seed=2)
    path = tmp_path / "fusion.npz"
    save_state(a, path)
    load_state(b, path)
    x = rng.standard_normal((1, 5, 8, 8))
    a.eval(), b.eval()
    assert np.allclose(a(x), b(x))
