"""Unit tests for model checkpointing."""

import os

import numpy as np
import pytest

from repro.nn.containers import Sequential
from repro.nn.layers import Conv2d, ReLU
from repro.nn.module import Module
from repro.nn.serialize import (
    load_checkpoint,
    load_state,
    save_checkpoint,
    save_state,
)


def test_save_load_roundtrip(tmp_path, rng):
    a = Sequential(Conv2d(2, 3, 3, rng=np.random.default_rng(1)), ReLU())
    b = Sequential(Conv2d(2, 3, 3, rng=np.random.default_rng(2)), ReLU())
    path = tmp_path / "model.npz"
    save_state(a, path)
    load_state(b, path)
    x = rng.standard_normal((1, 2, 4, 4))
    assert np.allclose(a(x), b(x))


def test_save_parameterless_module_rejected(tmp_path):
    class Empty(Module):
        pass

    with pytest.raises(ValueError):
        save_state(Empty(), tmp_path / "empty.npz")


def test_load_into_wrong_architecture_rejected(tmp_path, rng):
    a = Sequential(Conv2d(2, 3, 3, rng=rng))
    b = Sequential(Conv2d(2, 4, 3, rng=rng))
    path = tmp_path / "model.npz"
    save_state(a, path)
    with pytest.raises(ValueError):
        load_state(b, path)


def test_save_checkpoint_ignores_stale_tmp(tmp_path):
    """Regression: a stale ``.tmp`` from a crashed writer must never be
    installed as the checkpoint.

    The old implementation wrote to ``{path}.tmp`` — which numpy silently
    turns into ``{path}.tmp.npz`` — then probed ``os.path.exists(tmp)``:
    a leftover ``{path}.tmp`` from a previous crash made the probe
    resolve to the *stale* file and ``os.replace`` installed garbage.
    """
    path = tmp_path / "ckpt.npz"
    stale = str(path) + ".tmp"
    with open(stale, "wb") as handle:
        handle.write(b"half-written garbage from a crashed run")
    arrays = {"w": np.arange(6.0).reshape(2, 3)}
    save_checkpoint(path, arrays, {"epoch": 4})
    loaded, meta = load_checkpoint(path)
    assert meta == {"epoch": 4}
    np.testing.assert_array_equal(loaded["w"], arrays["w"])
    # the stale temp must be gone, and no new temp may linger
    leftovers = [n for n in os.listdir(tmp_path) if ".tmp" in n]
    assert leftovers == []


def test_save_checkpoint_overwrite_is_atomic_and_clean(tmp_path):
    path = tmp_path / "ckpt.npz"
    save_checkpoint(path, {"w": np.zeros(3)}, {"epoch": 1})
    save_checkpoint(path, {"w": np.ones(3)}, {"epoch": 2})
    loaded, meta = load_checkpoint(path)
    assert meta["epoch"] == 2
    np.testing.assert_array_equal(loaded["w"], np.ones(3))
    assert sorted(os.listdir(tmp_path)) == ["ckpt.npz"]


def test_load_state_rejects_training_checkpoint_actionably(tmp_path, rng):
    """Regression: loading a checkpoint archive through ``load_state``
    must say "use load_checkpoint", not die in load_state_dict."""
    module = Sequential(Conv2d(2, 3, 3, rng=rng))
    path = tmp_path / "training.npz"
    save_checkpoint(path, module.state_dict(), {"epoch": 9})
    with pytest.raises(ValueError, match="load_checkpoint"):
        load_state(module, path)


def test_load_state_names_missing_and_unexpected_keys(tmp_path, rng):
    source = Sequential(Conv2d(2, 3, 3, rng=rng))
    target = Sequential(Conv2d(2, 3, 3, rng=rng), Conv2d(3, 3, 1, rng=rng))
    path = tmp_path / "weights.npz"
    state = source.state_dict()
    state["stray.weight"] = np.zeros(2)
    np.savez_compressed(path, **state)
    with pytest.raises(ValueError) as excinfo:
        load_state(target, path)
    message = str(excinfo.value)
    assert "missing" in message and "1.weight" in message
    assert "unexpected" in message and "stray.weight" in message


def test_full_model_roundtrip(tmp_path, rng):
    from repro.models import IRFusionNet

    a = IRFusionNet(in_channels=5, base_channels=4, depth=2, seed=1)
    b = IRFusionNet(in_channels=5, base_channels=4, depth=2, seed=2)
    path = tmp_path / "fusion.npz"
    save_state(a, path)
    load_state(b, path)
    x = rng.standard_normal((1, 5, 8, 8))
    a.eval(), b.eval()
    assert np.allclose(a(x), b(x))
