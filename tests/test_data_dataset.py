"""Unit tests for sample building and the dataset container."""

import numpy as np
import pytest

from repro.data.dataset import (
    DesignSample,
    IRDropDataset,
    build_sample,
    golden_ir_drop,
)
from repro.features.fusion import FeatureConfig
from repro.features.maps import FeatureStack


class TestGoldenLabel:
    def test_label_positive_and_shaped(self, fake_design):
        label = golden_ir_drop(fake_design)
        assert label.shape == fake_design.geometry.shape
        assert label.max() > 0

    def test_label_matches_converged_powerrush(self, fake_design):
        from repro.solvers.powerrush import PowerRushSimulator

        report = PowerRushSimulator(tol=1e-13).simulate_grid(fake_design.grid)
        assert np.allclose(
            golden_ir_drop(fake_design),
            report.drop_image(fake_design.geometry),
            atol=1e-8,
        )


class TestBuildSample:
    def test_default_sample(self, fake_sample, fake_design):
        assert fake_sample.name == fake_design.name
        assert fake_sample.is_fake
        assert fake_sample.rough_label is not None
        assert fake_sample.features.shape == fake_sample.label.shape

    def test_rough_label_tracks_solver_budget(self, fake_design):
        rough1 = build_sample(fake_design, solver_iterations=1).rough_label
        rough6 = build_sample(fake_design, solver_iterations=6).rough_label
        golden = golden_ir_drop(fake_design)
        assert np.abs(rough6 - golden).mean() < np.abs(rough1 - golden).mean()

    def test_without_numerical_no_rough(self, fake_design):
        sample = build_sample(
            fake_design, FeatureConfig(use_numerical=False)
        )
        assert sample.rough_label is None
        assert not any(
            c.startswith("numerical") for c in sample.features.channels
        )

    def test_label_shape_validation(self, fake_sample):
        with pytest.raises(ValueError):
            DesignSample(
                name="bad",
                kind="fake",
                features=fake_sample.features,
                label=np.zeros((3, 3)),
            )


class TestDataset:
    def test_len_iter_getitem(self, tiny_dataset):
        assert len(tiny_dataset) == 2
        assert tiny_dataset[0].is_fake
        assert [s.kind for s in tiny_dataset] == ["fake", "real"]

    def test_channels_consistent(self, tiny_dataset):
        assert "numerical_m1" in tiny_dataset.channels

    def test_channels_mismatch_detected(self, fake_sample, fake_design):
        other = build_sample(fake_design, FeatureConfig(hierarchical=False))
        dataset = IRDropDataset([fake_sample, other])
        with pytest.raises(ValueError):
            dataset.channels

    def test_empty_dataset_channels_rejected(self):
        with pytest.raises(ValueError):
            IRDropDataset([]).channels

    def test_split_by_kind(self, tiny_dataset):
        fakes, reals = tiny_dataset.split_by_kind()
        assert len(fakes) == 1 and len(reals) == 1
        assert fakes[0].is_fake and not reals[0].is_fake

    def test_as_arrays_shapes(self, tiny_dataset):
        x, y = tiny_dataset.as_arrays()
        n_channels = len(tiny_dataset.channels)
        assert x.shape == (2, n_channels, 16, 16)
        assert y.shape == (2, 1, 16, 16)

    def test_as_arrays_empty_rejected(self):
        with pytest.raises(ValueError):
            IRDropDataset([]).as_arrays()

    def test_from_designs(self, fake_design, real_design):
        dataset = IRDropDataset.from_designs(
            [fake_design, real_design], solver_iterations=1
        )
        assert len(dataset) == 2
        assert dataset[1].kind == "real"


class TestAsArraysAllocation:
    """``as_arrays`` must fill preallocated blocks, not stack-then-cast.

    The old path (``np.stack`` + ``astype(float64)``) held the stacked
    copy and the cast output simultaneously — roughly twice the dataset
    at peak.  The rewrite allocates each output once and fills row by
    row, so peak traced allocation stays near the output size itself.
    """

    @staticmethod
    def _bulky_dataset(n=24, channels=6, pixels=48):
        rng = np.random.default_rng(7)
        names = [f"c{k}" for k in range(channels)]
        samples = [
            DesignSample(
                name=f"d{k}",
                kind="fake",
                features=FeatureStack(
                    channels=list(names),
                    data=rng.standard_normal((channels, pixels, pixels)),
                ),
                label=rng.standard_normal((pixels, pixels)),
            )
            for k in range(n)
        ]
        return IRDropDataset(samples)

    def test_values_and_dtype(self):
        dataset = self._bulky_dataset(n=3, channels=2, pixels=8)
        x, y = dataset.as_arrays()
        assert x.dtype == np.float64 and y.dtype == np.float64
        for k, sample in enumerate(dataset):
            assert np.array_equal(x[k], sample.features.data)
            assert np.array_equal(y[k, 0], sample.label)

    def test_peak_allocation_near_output_size(self):
        import tracemalloc

        dataset = self._bulky_dataset()
        dataset.as_arrays()  # warm any lazy imports/caches
        tracemalloc.start()
        x, y = dataset.as_arrays()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        output_bytes = x.nbytes + y.nbytes
        # stack+astype peaked around 2x output; the filled path must
        # stay well under that.
        assert peak < 1.5 * output_bytes, (
            f"as_arrays peaked at {peak / 1e6:.1f}MB for "
            f"{output_bytes / 1e6:.1f}MB of output"
        )
