"""Unit tests for the evaluation harness and report rendering."""

import numpy as np
import pytest

from repro.eval.evaluate import (
    evaluate_rough_solutions,
    evaluate_trainer,
    train_and_evaluate,
)
from repro.eval.report import (
    ascii_map,
    format_metrics_table,
    format_sweep_table,
    side_by_side,
)
from repro.data.dataset import IRDropDataset, build_sample
from repro.features.fusion import FeatureConfig
from repro.models import IRFusionNet
from repro.train.metrics import Metrics
from repro.train.trainer import TrainConfig, Trainer


@pytest.fixture()
def trainer(tiny_dataset):
    model = IRFusionNet(
        in_channels=len(tiny_dataset.channels), base_channels=4, depth=2
    )
    return Trainer(model, config=TrainConfig(epochs=1, batch_size=2))


class TestEvaluate:
    def test_per_design_and_average(self, trainer, tiny_dataset):
        per_design, averaged = evaluate_trainer(trainer, tiny_dataset)
        assert len(per_design) == 2
        assert averaged.mae == pytest.approx(
            np.mean([m.mae for m in per_design])
        )

    def test_untrained_fusion_equals_rough(self, trainer, tiny_dataset):
        """Zero-init + residual: model metrics == rough-solver metrics."""
        _, averaged = evaluate_trainer(trainer, tiny_dataset)
        rough = evaluate_rough_solutions(tiny_dataset)
        assert averaged.mae == pytest.approx(rough.mae, abs=1e-12)
        assert averaged.f1 == pytest.approx(rough.f1)

    def test_rough_requires_numerical_samples(self, fake_design):
        sample = build_sample(fake_design, FeatureConfig(use_numerical=False))
        with pytest.raises(ValueError):
            evaluate_rough_solutions(IRDropDataset([sample]))

    def test_train_and_evaluate(self, tiny_dataset):
        model = IRFusionNet(
            in_channels=len(tiny_dataset.channels), base_channels=4, depth=2
        )
        history, metrics, seconds = train_and_evaluate(
            model,
            tiny_dataset,
            tiny_dataset,
            config=TrainConfig(epochs=2, batch_size=2),
        )
        assert len(history.epoch_losses) == 2
        assert seconds > 0
        assert metrics.mae >= 0


class TestReport:
    def test_metrics_table_contains_rows(self):
        table = format_metrics_table(
            {
                "IR-Fusion (Ours)": Metrics(0.72e-4, 0.71, 3.05e-4, 6.98),
                "MAUnet": Metrics(1.06e-4, 0.62, 4.38e-4, 2.31),
            }
        )
        assert "IR-Fusion (Ours)" in table
        assert "0.72" in table
        assert "MAE" in table

    def test_metrics_table_empty_rejected(self):
        with pytest.raises(ValueError):
            format_metrics_table({})

    def test_sweep_table(self):
        table = format_sweep_table(
            [1, 2], {"powerrush": [1.0, 0.5], "fusion": [0.4, 0.3]}
        )
        assert "powerrush" in table and "fusion" in table
        assert table.count("\n") >= 4

    def test_sweep_table_length_mismatch(self):
        with pytest.raises(ValueError):
            format_sweep_table([1, 2], {"a": [1.0]})

    def test_ascii_map_renders(self, rng):
        art = ascii_map(rng.random((16, 16)), width=16)
        lines = art.splitlines()
        assert len(lines) >= 4
        assert all(len(line) == 16 for line in lines)

    def test_ascii_map_flat_input(self):
        art = ascii_map(np.zeros((8, 8)))
        assert set("".join(art.splitlines())) == {" "}

    def test_ascii_map_rejects_1d(self):
        with pytest.raises(ValueError):
            ascii_map(np.zeros(5))

    def test_side_by_side(self):
        merged = side_by_side(["ab\ncd", "ef\ngh"], ["L", "R"])
        lines = merged.splitlines()
        assert len(lines) == 3
        assert "ab" in lines[1] and "ef" in lines[1]

    def test_side_by_side_label_mismatch(self):
        with pytest.raises(ValueError):
            side_by_side(["x"], ["a", "b"])
