"""Tests for machine-readable result export."""

import json

import pytest

from repro.eval.tables import (
    load_metrics_csv,
    metrics_to_records,
    save_metrics_csv,
    save_metrics_json,
    sweep_to_records,
)
from repro.train.metrics import Metrics


@pytest.fixture()
def rows():
    return {
        "IR-Fusion (Ours)": Metrics(0.72e-4, 0.71, 3.05e-4, 6.98),
        "MAUnet": Metrics(1.06e-4, 0.62, 4.38e-4, 2.31),
    }


class TestMetricsExport:
    def test_records_shape(self, rows):
        records = metrics_to_records(rows)
        assert len(records) == 2
        assert records[0]["method"] == "IR-Fusion (Ours)"
        assert records[0]["f1"] == 0.71

    def test_csv_roundtrip(self, tmp_path, rows):
        path = tmp_path / "t1.csv"
        save_metrics_csv(rows, path)
        loaded = load_metrics_csv(path)
        assert set(loaded) == set(rows)
        for name in rows:
            assert loaded[name].mae == pytest.approx(rows[name].mae)
            assert loaded[name].runtime_seconds == pytest.approx(
                rows[name].runtime_seconds
            )

    def test_json_export(self, tmp_path, rows):
        path = tmp_path / "t1.json"
        save_metrics_json(rows, path)
        records = json.loads(path.read_text())
        assert len(records) == 2
        assert {r["method"] for r in records} == set(rows)


class TestSweepExport:
    def test_records(self):
        records = sweep_to_records(
            [1, 2], {"powerrush": [1.0, 0.5], "fusion": [0.4, 0.3]}
        )
        assert records == [
            {"iterations": 1, "powerrush": 1.0, "fusion": 0.4},
            {"iterations": 2, "powerrush": 0.5, "fusion": 0.3},
        ]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            sweep_to_records([1, 2], {"a": [1.0]})
