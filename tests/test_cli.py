"""Tests for the command-line interface (driven in-process)."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.spice.writer import write_spice


@pytest.fixture()
def deck_path(tmp_path, fake_design):
    path = tmp_path / "design.sp"
    write_spice(fake_design.netlist, path)
    return path


@pytest.fixture()
def deck4_path(tmp_path):
    """A 4-metal-layer deck matching the CLI trainer's default stack."""
    from repro.data.synthetic import generate_design, make_fake_spec

    design = generate_design(
        make_fake_spec("cli4", seed=5, pixels=16, num_layers=4)
    )
    path = tmp_path / "design4.sp"
    write_spice(design.netlist, path)
    return path


class TestSimulate:
    def test_basic(self, deck_path, capsys):
        assert main(["simulate", str(deck_path)]) == 0
        out = capsys.readouterr().out
        assert "worst_drop_mV=" in out
        assert "converged=True" in out

    def test_signoff_pass(self, deck_path, capsys):
        code = main(["simulate", str(deck_path), "--limit-mv", "10000"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_signoff_fail(self, deck_path, capsys):
        code = main(["simulate", str(deck_path), "--limit-mv", "0.001"])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_iteration_cap(self, deck_path, capsys):
        assert main(["simulate", str(deck_path), "--iterations", "2"]) == 0
        assert "iterations=2" in capsys.readouterr().out

    def test_fast_preset(self, deck_path, capsys):
        assert main(
            ["simulate", str(deck_path), "--preset", "fast", "--iterations", "3"]
        ) == 0


class TestGenerate:
    def test_generates_directory(self, tmp_path, capsys):
        out_dir = tmp_path / "gen"
        code = main(
            ["generate", str(out_dir), "--pixels", "16", "--seed", "3",
             "--golden"]
        )
        assert code == 0
        assert (out_dir / "netlist.sp").exists()
        assert (out_dir / "current_map.csv").exists()
        assert (out_dir / "ir_drop_map.csv").exists()

    def test_generated_deck_simulates(self, tmp_path, capsys):
        out_dir = tmp_path / "gen"
        main(["generate", str(out_dir), "--pixels", "16", "--kind", "real"])
        assert main(["simulate", str(out_dir / "netlist.sp")]) == 0


class TestTrainAnalyze:
    def test_train_then_analyze(self, tmp_path, deck4_path, capsys):
        model = tmp_path / "model.npz"
        code = main(
            ["train", str(model), "--pixels", "16", "--fake", "2",
             "--real", "1", "--epochs", "1", "--channels", "4"]
        )
        assert code == 0
        assert model.exists()
        meta = json.loads((tmp_path / "model.npz.json").read_text())
        assert meta["in_channels"] > 0

        map_csv = tmp_path / "map.csv"
        code = main(
            ["analyze", str(model), str(deck4_path), "--save-map", str(map_csv)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worst_predicted_drop_mV=" in out
        drop = np.loadtxt(map_csv, delimiter=",")
        assert drop.ndim == 2

    def test_analyze_with_signoff(self, tmp_path, deck4_path, capsys):
        model = tmp_path / "model.npz"
        main(
            ["train", str(model), "--pixels", "16", "--fake", "2",
             "--real", "1", "--epochs", "1", "--channels", "4"]
        )
        code = main(
            ["analyze", str(model), str(deck4_path), "--limit-mv", "10000"]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out
