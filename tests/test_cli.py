"""Tests for the command-line interface (driven in-process)."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.spice.writer import write_spice


@pytest.fixture()
def deck_path(tmp_path, fake_design):
    path = tmp_path / "design.sp"
    write_spice(fake_design.netlist, path)
    return path


@pytest.fixture()
def deck4_path(tmp_path):
    """A 4-metal-layer deck matching the CLI trainer's default stack."""
    from repro.data.synthetic import generate_design, make_fake_spec

    design = generate_design(
        make_fake_spec("cli4", seed=5, pixels=16, num_layers=4)
    )
    path = tmp_path / "design4.sp"
    write_spice(design.netlist, path)
    return path


class TestSimulate:
    def test_basic(self, deck_path, capsys):
        assert main(["simulate", str(deck_path)]) == 0
        out = capsys.readouterr().out
        assert "worst_drop_mV=" in out
        assert "converged=True" in out

    def test_signoff_pass(self, deck_path, capsys):
        code = main(["simulate", str(deck_path), "--limit-mv", "10000"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_signoff_fail(self, deck_path, capsys):
        code = main(["simulate", str(deck_path), "--limit-mv", "0.001"])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_iteration_cap(self, deck_path, capsys):
        assert main(["simulate", str(deck_path), "--iterations", "2"]) == 0
        assert "iterations=2" in capsys.readouterr().out

    def test_fast_preset(self, deck_path, capsys):
        assert main(
            ["simulate", str(deck_path), "--preset", "fast", "--iterations", "3"]
        ) == 0


class TestGenerate:
    def test_generates_directory(self, tmp_path, capsys):
        out_dir = tmp_path / "gen"
        code = main(
            ["generate", str(out_dir), "--pixels", "16", "--seed", "3",
             "--golden"]
        )
        assert code == 0
        assert (out_dir / "netlist.sp").exists()
        assert (out_dir / "current_map.csv").exists()
        assert (out_dir / "ir_drop_map.csv").exists()

    def test_generated_deck_simulates(self, tmp_path, capsys):
        out_dir = tmp_path / "gen"
        main(["generate", str(out_dir), "--pixels", "16", "--kind", "real"])
        assert main(["simulate", str(out_dir / "netlist.sp")]) == 0


class TestTrainAnalyze:
    def test_train_then_analyze(self, tmp_path, deck4_path, capsys):
        model = tmp_path / "model.npz"
        code = main(
            ["train", str(model), "--pixels", "16", "--fake", "2",
             "--real", "1", "--epochs", "1", "--channels", "4"]
        )
        assert code == 0
        assert model.exists()
        meta = json.loads((tmp_path / "model.npz.json").read_text())
        assert meta["in_channels"] > 0

        map_csv = tmp_path / "map.csv"
        code = main(
            ["analyze", str(model), str(deck4_path), "--save-map", str(map_csv)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worst_predicted_drop_mV=" in out
        drop = np.loadtxt(map_csv, delimiter=",")
        assert drop.ndim == 2

    def test_analyze_with_signoff(self, tmp_path, deck4_path, capsys):
        model = tmp_path / "model.npz"
        main(
            ["train", str(model), "--pixels", "16", "--fake", "2",
             "--real", "1", "--epochs", "1", "--channels", "4"]
        )
        code = main(
            ["analyze", str(model), str(deck4_path), "--limit-mv", "10000"]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out


class TestDiagnosticsOutput:
    def test_simulate_prints_diagnostics_block(self, deck_path, capsys):
        assert main(["simulate", str(deck_path)]) == 0
        out = capsys.readouterr().out
        assert "diagnostics: degraded=false" in out

    def test_simulate_reports_repairs_on_sick_deck(self, tmp_path, capsys):
        deck = tmp_path / "island.sp"
        deck.write_text(
            "* floating island\n"
            "R1 n1_m1_0_0 n1_m1_1000_0 1.0\n"
            "I1 n1_m1_1000_0 0 0.01\n"
            "V1 n1_m1_0_0 0 1.05\n"
            "R9 n1_m1_5000_5000 n1_m1_6000_5000 2.0\n"
            "I9 n1_m1_6000_5000 0 0.002\n"
            ".end\n"
        )
        assert main(["simulate", str(deck)]) == 0
        out = capsys.readouterr().out
        assert "diagnostics: degraded=true" in out
        assert "floating_nodes" in out
        assert "ground_tie" in out


class TestErrorHandling:
    def test_missing_deck_exits_2(self, capsys):
        code = main(["simulate", "/nonexistent/deck.sp"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: bad input:")
        assert "Traceback" not in err

    def test_malformed_deck_exits_2(self, tmp_path, capsys):
        deck = tmp_path / "bad.sp"
        deck.write_text("R1 only_two_tokens\n.end\n")
        code = main(["simulate", str(deck)])
        assert code == 2
        assert "error: bad input:" in capsys.readouterr().err

    def test_missing_model_meta_exits_2(self, tmp_path, deck_path, capsys):
        code = main(["analyze", str(tmp_path / "no_model.npz"), str(deck_path)])
        assert code == 2
        assert "error: bad input:" in capsys.readouterr().err

    def test_debug_reraises(self, tmp_path):
        from repro.spice.parser import SpiceParseError

        deck = tmp_path / "bad.sp"
        deck.write_text("R1 only_two_tokens\n.end\n")
        with pytest.raises(SpiceParseError):
            main(["--debug", "simulate", str(deck)])

    def test_solver_failure_exits_3(self, deck_path, capsys, monkeypatch):
        from repro.solvers import powerrush
        from repro.solvers.guard import SolverDiagnostics, SolverFailure

        def explode(self, path):
            raise SolverFailure(
                "all fallback stages exhausted", SolverDiagnostics()
            )

        monkeypatch.setattr(
            powerrush.PowerRushSimulator, "simulate_file", explode
        )
        code = main(["simulate", str(deck_path)])
        assert code == 3
        assert "error: solver failure:" in capsys.readouterr().err

    def test_unexpected_error_exits_1(self, deck_path, capsys, monkeypatch):
        from repro.solvers import powerrush

        def explode(self, path):
            raise RuntimeError("boom")

        monkeypatch.setattr(
            powerrush.PowerRushSimulator, "simulate_file", explode
        )
        code = main(["simulate", str(deck_path)])
        assert code == 1
        assert "RuntimeError" in capsys.readouterr().err


class TestServeForwarding:
    """`repro serve ...` forwards its flags to `python -m repro.serve`.

    argparse.REMAINDER cannot start with an option-like token
    (bpo-17050), so `main` splits the forwarded argv off by hand —
    these pin the split against regressions.
    """

    def test_option_first_args_reach_serve(self, monkeypatch):
        from repro import cli

        captured = {}

        def fake_serve_main(argv):
            captured["argv"] = argv
            return 0

        monkeypatch.setattr(
            "repro.serve.__main__.main", fake_serve_main
        )
        code = cli.main(["serve", "--model-dir", "/nope", "--port", "0"])
        assert code == 0
        assert captured["argv"] == ["--model-dir", "/nope", "--port", "0"]

    def test_global_flags_stay_with_repro(self, monkeypatch):
        from repro import cli

        captured = {}

        def fake_serve_main(argv):
            captured["argv"] = argv
            return 0

        monkeypatch.setattr(
            "repro.serve.__main__.main", fake_serve_main
        )
        assert cli.main(["--debug", "serve", "--queue-limit", "2"]) == 0
        assert captured["argv"] == ["--queue-limit", "2"]

    def test_serve_as_positional_is_not_the_subcommand(self, capsys):
        # A deck literally named "serve" must not trigger forwarding:
        # analyze should fail on the missing file with exit code 2.
        assert main(["analyze", "model.npz", "serve"]) == 2

    def test_serve_help_is_forwarded(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        assert "--model-dir" in capsys.readouterr().out
