"""Unit tests for augmentation and oversampling."""

import numpy as np
import pytest

from repro.data.augment import augment_dataset, oversample, rotate_sample
from repro.data.dataset import IRDropDataset


class TestRotateSample:
    def test_zero_turns_is_identity(self, fake_sample):
        assert rotate_sample(fake_sample, 0) is fake_sample
        assert rotate_sample(fake_sample, 4) is fake_sample

    def test_rotation_changes_layout(self, fake_sample):
        rotated = rotate_sample(fake_sample, 1)
        assert not np.allclose(rotated.label, fake_sample.label)

    def test_four_rotations_identity(self, fake_sample):
        out = fake_sample
        for _ in range(4):
            out = rotate_sample(out, 1)
        assert np.allclose(out.label, fake_sample.label)
        assert np.allclose(out.features.data, fake_sample.features.data)

    def test_rotation_consistent_between_features_and_label(self, fake_sample):
        """The pixel that held the max drop moves with the features."""
        rotated = rotate_sample(fake_sample, 1)
        # clockwise rotation: (r, c) -> (c, H-1-r)
        h = fake_sample.label.shape[0]
        r, c = np.unravel_index(
            fake_sample.label.argmax(), fake_sample.label.shape
        )
        r2, c2 = np.unravel_index(rotated.label.argmax(), rotated.label.shape)
        assert (r2, c2) == (c, h - 1 - r)

    def test_rough_label_rotated_too(self, fake_sample):
        rotated = rotate_sample(fake_sample, 2)
        assert np.allclose(
            rotated.rough_label, np.rot90(fake_sample.rough_label, k=-2)
        )

    def test_names_tagged(self, fake_sample):
        assert rotate_sample(fake_sample, 3).name.endswith("_rot270")

    def test_kind_preserved(self, real_sample):
        assert rotate_sample(real_sample, 1).kind == "real"


class TestAugmentDataset:
    def test_fourfold(self, tiny_dataset):
        augmented = augment_dataset(tiny_dataset)
        assert len(augmented) == 4 * len(tiny_dataset)

    def test_originals_kept(self, tiny_dataset):
        augmented = augment_dataset(tiny_dataset)
        assert augmented[0] is tiny_dataset[0]

    def test_unique_names(self, tiny_dataset):
        names = [s.name for s in augment_dataset(tiny_dataset)]
        assert len(set(names)) == len(names)


class TestOversample:
    def test_contest_factors(self, tiny_dataset):
        out = oversample(tiny_dataset, fake_factor=2, real_factor=5)
        kinds = [s.kind for s in out]
        assert kinds.count("fake") == 2
        assert kinds.count("real") == 5

    def test_factor_one_is_identity_content(self, tiny_dataset):
        out = oversample(tiny_dataset, 1, 1)
        assert [s.name for s in out] == [s.name for s in tiny_dataset]

    def test_invalid_factors(self, tiny_dataset):
        with pytest.raises(ValueError):
            oversample(tiny_dataset, fake_factor=0)
