"""Numerics sanitizer: array checks, session instrumentation, e2e wiring."""

import numpy as np
import pytest

from repro.analysis.sanitizer import (
    NumericsTrap,
    SanitizerSession,
    check_array,
    named_leaf_modules,
)
from repro.nn.containers import Sequential
from repro.nn.layers import Conv2d


# -- check_array -----------------------------------------------------------


def test_clean_array_has_no_findings():
    assert check_array(np.ones((4, 4)), "op") == []


def test_integer_arrays_are_ignored():
    assert check_array(np.arange(10), "op") == []


def test_nan_finding_reports_first_index_and_count():
    arr = np.zeros((2, 3))
    arr[1, 2] = np.nan
    arr[0, 1] = np.nan
    findings = check_array(arr, "conv.forward")
    assert [f.kind for f in findings] == ["nan"]
    f = findings[0]
    assert f.op == "conv.forward"
    assert f.count == 2
    assert f.total == 6
    assert f.first_index == (0, 1)


def test_inf_and_denormal_and_overflow_risk():
    arr = np.array([np.inf, np.finfo(np.float64).tiny / 4, 1e40, 1.0])
    kinds = {f.kind for f in check_array(arr, "op")}
    assert kinds == {"inf", "denormal", "fp32-overflow-risk"}


def test_denormal_check_can_be_disabled():
    arr = np.array([np.finfo(np.float64).tiny / 4])
    assert check_array(arr, "op", check_denormals=False) == []


# -- SanitizerSession ------------------------------------------------------


def _two_convs():
    rng = np.random.default_rng(0)
    return Sequential(
        Conv2d(2, 3, 3, padding=1, rng=rng),
        Conv2d(3, 3, 3, padding=1, rng=rng),
    )


def test_session_localizes_nan_to_originating_op():
    model = _two_convs()
    model.modules[1].weight.data[:] = np.nan
    model.modules[1].weight.sync_compute()
    x = np.ones((1, 2, 4, 4))
    with SanitizerSession(model, on_finding="record") as session:
        model(x)
    nan_ops = [f.op for f in session.findings if f.kind == "nan"]
    assert nan_ops  # something fired
    # the FIRST nan is at the poisoned conv, not downstream
    assert nan_ops[0] == "model.modules.1.forward"


def test_session_raise_mode_traps_at_the_op():
    model = _two_convs()
    model.modules[0].weight.data[:] = np.nan
    model.modules[0].weight.sync_compute()
    with SanitizerSession(model, on_finding="raise"):
        with pytest.raises(NumericsTrap) as excinfo:
            model(np.ones((1, 2, 4, 4)))
    assert "model.modules.0.forward" in str(excinfo.value)
    assert excinfo.value.finding.kind == "nan"


def test_session_restores_modules_on_exit():
    model = _two_convs()
    with SanitizerSession(model, on_finding="record"):
        assert "forward" in model.modules[0].__dict__
    for conv in model.modules:
        assert "forward" not in conv.__dict__
        assert "backward" not in conv.__dict__
    # and the model still runs clean
    out = model(np.ones((1, 2, 4, 4)))
    assert np.isfinite(out).all()


def test_session_checks_backward_too():
    model = _two_convs()
    x = np.ones((1, 2, 4, 4))
    with SanitizerSession(model, on_finding="raise"):
        out = model(x)
        grad = np.zeros_like(out)
        grad[0, 0, 0, 0] = np.nan
        with pytest.raises(NumericsTrap) as excinfo:
            model.backward(grad)
    assert ".backward" in str(excinfo.value)


def test_record_mode_dedupes_per_op_and_kind():
    model = _two_convs()
    model.modules[0].weight.data[:] = np.nan
    model.modules[0].weight.sync_compute()
    x = np.ones((1, 2, 4, 4))
    with SanitizerSession(model, on_finding="record") as session:
        model(x)
        model(x)  # second pass must not duplicate findings
    keys = [(f.op, f.kind) for f in session.findings]
    assert len(keys) == len(set(keys))


def test_named_leaf_modules_paths():
    model = _two_convs()
    paths = [path for path, _ in named_leaf_modules(model)]
    assert paths == ["model.modules.0", "model.modules.1"]


def test_invalid_policy_rejected():
    with pytest.raises(ValueError):
        SanitizerSession(_two_convs(), on_finding="explode")


# -- end-to-end pipeline wiring --------------------------------------------


def test_analyze_localizes_injected_nan_to_bottleneck(fake_design):
    from repro.core.config import FusionConfig
    from repro.core.pipeline import IRFusionPipeline
    from repro.features.fusion import channel_names
    from repro.models.registry import preferred_loss
    from repro.train.trainer import Trainer

    config = FusionConfig(
        pixels=16, num_fake=1, num_real_train=1, num_real_test=1,
        sanitize=True,
    )
    pipeline = IRFusionPipeline(config)
    layers = [info.index for info in fake_design.geometry.layers]
    in_channels = len(channel_names(config.features, layers))
    pipeline.model = pipeline.build_model(in_channels=in_channels)
    pipeline.trainer = Trainer(
        pipeline.model,
        loss=preferred_loss(config.model_name),
        config=config.train,
    )
    pipeline._trained_channels = in_channels

    # Poison a mid-network op: NaN weights in the bottleneck conv.
    conv = pipeline.model.bottleneck.modules[0]
    conv.weight.data[:] = np.nan
    conv.weight.sync_compute()

    result = pipeline.analyze_design(fake_design)
    findings = result.diagnostics.numerics
    assert findings, "sanitizer recorded nothing"
    model_nans = [
        f for f in findings if f.kind == "nan" and f.op.startswith("model.")
    ]
    assert model_nans, "no model-stage nan recorded"
    assert "bottleneck" in model_nans[0].op
    # solver and feature stages stayed clean
    assert not any(
        f.kind == "nan" and f.op.startswith(("solver.", "features."))
        for f in findings
    )
    # diagnostics serialization includes the findings
    assert result.diagnostics.to_dict()["numerics"]


def test_sanitize_off_records_nothing(fake_design):
    from repro.core.config import FusionConfig
    from repro.core.pipeline import IRFusionPipeline
    from repro.features.fusion import channel_names
    from repro.models.registry import preferred_loss
    from repro.train.trainer import Trainer

    config = FusionConfig(
        pixels=16, num_fake=1, num_real_train=1, num_real_test=1,
    )
    pipeline = IRFusionPipeline(config)
    layers = [info.index for info in fake_design.geometry.layers]
    in_channels = len(channel_names(config.features, layers))
    pipeline.model = pipeline.build_model(in_channels=in_channels)
    pipeline.trainer = Trainer(
        pipeline.model,
        loss=preferred_loss(config.model_name),
        config=config.train,
    )
    pipeline._trained_channels = in_channels

    result = pipeline.analyze_design(fake_design)
    assert result.diagnostics.numerics == []
