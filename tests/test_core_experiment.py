"""Tests for the Table-I / Fig-7 / Fig-8 experiment runners (tiny scale)."""

import pytest

from repro.core.config import FusionConfig
from repro.core.experiment import (
    ABLATION_VARIANTS,
    run_ablation_study,
    run_main_results,
    run_tradeoff_study,
)
from repro.train.trainer import TrainConfig


@pytest.fixture(scope="module")
def tiny_config():
    return FusionConfig(
        pixels=16,
        num_fake=2,
        num_real_train=1,
        num_real_test=1,
        base_channels=4,
        depth=2,
        train=TrainConfig(epochs=2, batch_size=4),
        augment=False,
        oversample_fake=1,
        oversample_real=1,
    )


class TestMainResults:
    def test_two_method_subset(self, tiny_config):
        results = run_main_results(
            tiny_config, model_names=["iredge", "ir_fusion"]
        )
        assert set(results) == {"IREDGe", "IR-Fusion (Ours)"}
        for metrics in results.values():
            assert metrics.mae >= 0
            assert 0 <= metrics.f1 <= 1
            assert metrics.runtime_seconds > 0

    def test_fusion_runtime_includes_solver(self, tiny_config):
        results = run_main_results(
            tiny_config, model_names=["iredge", "ir_fusion"]
        )
        # the fusion flow runs AMG-PCG per design, baselines do not
        assert (
            results["IR-Fusion (Ours)"].runtime_seconds
            > results["IREDGe"].runtime_seconds
        )


class TestTradeoff:
    def test_sweep_structure(self, tiny_config):
        result = run_tradeoff_study(tiny_config, iterations=[1, 2, 4])
        assert result.iterations == [1, 2, 4]
        assert len(result.powerrush_mae) == 3
        assert len(result.fusion_f1) == 3

    def test_powerrush_error_decreases_with_iterations(self, tiny_config):
        result = run_tradeoff_study(tiny_config, iterations=[1, 6])
        assert result.powerrush_mae[1] < result.powerrush_mae[0]

    def test_fusion_wins_mae_at(self, tiny_config):
        result = run_tradeoff_study(tiny_config, iterations=[1, 2])
        crossing = result.fusion_wins_mae_at()
        assert crossing is None or crossing in result.iterations


class TestAblation:
    def test_single_variant(self, tiny_config):
        result = run_ablation_study(tiny_config, variants=["w/o CBAM"])
        assert "w/o CBAM" in result.variants
        assert result.full.mae >= 0
        # deltas are finite numbers
        assert result.mae_increase_percent("w/o CBAM") == pytest.approx(
            100.0
            * (result.variants["w/o CBAM"].mae - result.full.mae)
            / result.full.mae
        )
        assert isinstance(result.f1_decrease_percent("w/o CBAM"), float)

    def test_unknown_variant_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            run_ablation_study(tiny_config, variants=["w/o Magic"])

    def test_variant_catalogue_matches_figure8(self):
        assert set(ABLATION_VARIANTS) == {
            "w/o Num. Solu.",
            "w/o Hier. Feat.",
            "w/o Inception",
            "w/o CBAM",
            "w/o Data Aug.",
            "w/o Curr. Lear.",
        }


class TestTradeoffHelpers:
    def test_equivalent_powerrush_iterations(self):
        from repro.core.experiment import TradeoffResult

        result = TradeoffResult(
            iterations=[1, 2, 3, 4],
            powerrush_mae=[10.0, 5.0, 2.0, 1.0],
            powerrush_f1=[0, 0, 0.5, 0.9],
            fusion_mae=[3.0, 1.5, 1.2, 1.0],
            fusion_f1=[0.5, 0.7, 0.8, 0.9],
        )
        # fusion at 2 iterations (1.5) is only matched by powerrush at 4
        assert result.equivalent_powerrush_iterations(at=2) == 4
        # fusion at 1 iteration (3.0) matched by powerrush at 3
        assert result.equivalent_powerrush_iterations(at=1) == 3

    def test_equivalent_never_reached(self):
        from repro.core.experiment import TradeoffResult

        result = TradeoffResult(
            iterations=[1, 2],
            powerrush_mae=[10.0, 5.0],
            powerrush_f1=[0, 0],
            fusion_mae=[1.0, 1.0],
            fusion_f1=[0.9, 0.9],
        )
        assert result.equivalent_powerrush_iterations(at=1) is None
