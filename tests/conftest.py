"""Shared fixtures.

Expensive artefacts (generated designs, built samples) are session-scoped;
tests must treat them as immutable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import IRDropDataset, build_sample
from repro.data.synthetic import generate_design, make_fake_spec, make_real_spec
from repro.grid.netlist import PowerGrid
from repro.spice.parser import parse_spice

TINY_DECK = """* tiny 2x2 test grid
R1 n1_m1_0_0 n1_m1_1000_0 1.0
R2 n1_m1_0_1000 n1_m1_1000_1000 2.0
R3 n1_m1_0_0 n1_m1_0_1000 1.0
R4 n1_m1_1000_0 n1_m1_1000_1000 1.0
I1 n1_m1_1000_1000 0 0.01
I2 n1_m1_1000_0 0 0.005
V1 n1_m1_0_0 0 1.05
.end
"""


@pytest.fixture(scope="session")
def tiny_netlist():
    return parse_spice(TINY_DECK)


@pytest.fixture(scope="session")
def tiny_grid(tiny_netlist):
    return PowerGrid.from_netlist(tiny_netlist)


@pytest.fixture(scope="session")
def fake_design():
    """A small regular design (16x16 px, 3 layers)."""
    return generate_design(
        make_fake_spec("fx_fake", seed=11, pixels=16, num_layers=3)
    )


@pytest.fixture(scope="session")
def real_design():
    """A small irregular design (16x16 px, 3 layers)."""
    return generate_design(
        make_real_spec("fx_real", seed=12, pixels=16, num_layers=3)
    )


@pytest.fixture(scope="session")
def fake_sample(fake_design):
    return build_sample(fake_design, solver_iterations=2)


@pytest.fixture(scope="session")
def real_sample(real_design):
    return build_sample(real_design, solver_iterations=2)


@pytest.fixture(scope="session")
def tiny_dataset(fake_sample, real_sample):
    return IRDropDataset([fake_sample, real_sample])


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
