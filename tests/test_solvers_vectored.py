"""Tests for vectored (multi-corner) static analysis."""

import numpy as np
import pytest

from repro.solvers.powerrush import PowerRushSimulator
from repro.solvers.vectored import VectoredAnalyzer


@pytest.fixture(scope="module")
def analyzer(fake_design):
    return VectoredAnalyzer(fake_design.grid)


def design_vector(design, scale=1.0):
    """The design's native load pattern as a current vector."""
    return {n.index: n.load_current * scale for n in design.grid.loads()}


class TestVectoredAnalyzer:
    def test_native_vector_matches_powerrush(self, fake_design, analyzer):
        drops = analyzer.solve_vector(design_vector(fake_design))
        report = PowerRushSimulator(tol=1e-10).simulate_grid(fake_design.grid)
        # the netlist-embedded loads are already in the RHS template, so
        # supplying them as a vector reproduces the plain simulation
        assert np.allclose(drops, report.ir_drop, atol=1e-6)

    def test_zero_vector_zero_drop(self, fake_design, analyzer):
        drops = analyzer.solve_vector({n.index: 0.0 for n in fake_design.grid.loads()})
        assert np.abs(drops).max() < 1e-8

    def test_linearity_in_current(self, fake_design, analyzer):
        one = analyzer.solve_vector(design_vector(fake_design, 1.0))
        two = analyzer.solve_vector(design_vector(fake_design, 2.0))
        assert np.allclose(two, 2.0 * one, atol=1e-6)

    def test_worst_case_combination(self, fake_design, analyzer):
        result = analyzer.run(
            [design_vector(fake_design, 0.5), design_vector(fake_design, 1.5)]
        )
        assert result.num_vectors == 2
        # the 1.5x vector dominates everywhere (same spatial pattern)
        assert (result.worst_vector[result.worst_drop > 1e-9] == 1).all()
        assert np.allclose(result.worst_drop, result.per_vector_drop[1])

    def test_spatially_distinct_vectors(self, fake_design, analyzer):
        loads = fake_design.grid.loads()
        half = len(loads) // 2
        left = {n.index: 0.002 for n in loads[:half]}
        right = {n.index: 0.002 for n in loads[half:]}
        result = analyzer.run([left, right])
        # each vector wins somewhere
        assert set(np.unique(result.worst_vector)) == {0, 1}

    def test_global_worst(self, fake_design, analyzer):
        result = analyzer.run(
            [design_vector(fake_design, 1.0), design_vector(fake_design, 3.0)]
        )
        drop, node, vector = result.global_worst()
        assert vector == 1
        assert drop == pytest.approx(result.per_vector_drop.max())
        assert result.per_vector_drop[vector, node] == pytest.approx(drop)

    def test_empty_vector_list_rejected(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.run([])

    def test_loading_a_pad_rejected(self, fake_design, analyzer):
        pad = fake_design.grid.pads()[0]
        with pytest.raises(ValueError):
            analyzer.solve_vector({pad.index: 0.1})
