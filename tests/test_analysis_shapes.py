"""Symbolic shape/dtype verification over every registered architecture."""

import numpy as np
import pytest

from repro.analysis.shapes import (
    ShapeError,
    ShapeVerifier,
    TensorSpec,
    verify_feature_contract,
    verify_model,
    verify_registry,
)
from repro.models.registry import MODEL_REGISTRY, create_model
from repro.nn.module import Module, Parameter

SIZES = [(16, 16), (32, 32), (16, 32)]


def _build(name, in_channels=7, depth=3):
    return create_model(
        name, in_channels=in_channels, base_channels=6, depth=depth, seed=0
    )


@pytest.mark.parametrize("hw", SIZES, ids=lambda s: f"{s[0]}x{s[1]}")
@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
def test_every_architecture_verifies_without_forward(name, hw):
    model = _build(name)
    report = verify_model(model, 7, hw, name=name)
    assert report.output.channels == 1
    assert (report.output.height, report.output.width) == hw
    assert report.output.dtype == np.dtype(np.float64)
    assert report.warnings == []


def test_verify_registry_covers_all_models():
    reports = verify_registry()
    assert set(reports) == set(MODEL_REGISTRY)


def test_channel_mismatch_names_offending_submodule():
    model = _build("ir_fusion")
    head = model.head
    out_c, in_c, kh, kw = head.weight.shape
    head.weight = Parameter(np.zeros((out_c, in_c + 3, kh, kw)))
    with pytest.raises(ShapeError, match=r"head.*expects"):
        verify_model(model, 7, (16, 16), name="ir_fusion")


def test_decoder_weight_corruption_names_decoder_path():
    model = _build("ir_fusion")
    conv = next(
        m for m in model.decoders[0].modules if hasattr(m, "weight")
    )
    out_c, in_c, kh, kw = conv.weight.shape
    conv.weight = Parameter(np.zeros((out_c, in_c + 1, kh, kw)))
    with pytest.raises(ShapeError, match=r"decoders\.0"):
        verify_model(model, 7, (16, 16), name="ir_fusion")


def test_dtype_contract_break_is_reported():
    model = _build("ir_fusion")
    model.head.weight.set_compute_dtype(np.float32)
    with pytest.raises(ShapeError, match="precision-contract"):
        verify_model(model, 7, (16, 16), name="ir_fusion")


def test_full_fp32_model_verifies_with_fp32_activations():
    model = _build("ir_fusion").set_compute_dtype(np.float32)
    report = verify_model(model, 7, (16, 16), dtype=np.float32)
    assert report.output.dtype == np.dtype(np.float32)


def test_indivisible_input_rejected():
    model = _build("ir_fusion")
    with pytest.raises(ShapeError):
        verify_model(model, 7, (12, 12), name="ir_fusion")


class _Mystery(Module):
    def forward(self, x):  # pragma: no cover - never executed
        return x


def test_strict_mode_rejects_unknown_modules():
    spec = TensorSpec(3, 8, 8, np.dtype(np.float64))
    with pytest.raises(ShapeError, match="no shape handler"):
        ShapeVerifier(strict=True).verify(_Mystery(), spec, "m")


def test_lenient_mode_warns_on_unknown_modules():
    spec = TensorSpec(3, 8, 8, np.dtype(np.float64))
    verifier = ShapeVerifier(strict=False)
    out = verifier.verify(_Mystery(), spec, "m")
    assert out == spec
    assert any("Mystery" in w for w in verifier.warnings)


def test_feature_contract_holds():
    verify_feature_contract()
