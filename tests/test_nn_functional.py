"""Unit tests for conv/pool primitives (adjoint identities included)."""

import numpy as np
import pytest

from repro.nn.functional import (
    avgpool2d_backward,
    avgpool2d_forward,
    col2im,
    conv_output_shape,
    im2col,
    maxpool2d_backward,
    maxpool2d_forward,
    to_pair,
    upsample_nearest_backward,
    upsample_nearest_forward,
)


class TestToPair:
    def test_int(self):
        assert to_pair(3) == (3, 3)

    def test_pair(self):
        assert to_pair((1, 7)) == (1, 7)

    def test_triple_rejected(self):
        with pytest.raises(ValueError):
            to_pair((1, 2, 3))


class TestConvOutputShape:
    def test_same_padding(self):
        assert conv_output_shape((8, 8), (3, 3), (1, 1), (1, 1)) == (8, 8)

    def test_stride(self):
        assert conv_output_shape((8, 8), (2, 2), (2, 2), (0, 0)) == (4, 4)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            conv_output_shape((2, 2), (5, 5), (1, 1), (0, 0))


class TestIm2Col:
    def test_shape(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        cols = im2col(x, (3, 3), (1, 1), (1, 1))
        assert cols.shape == (2, 27, 64)

    def test_identity_kernel(self, rng):
        x = rng.standard_normal((1, 2, 4, 4))
        cols = im2col(x, (1, 1), (1, 1), (0, 0))
        assert np.allclose(cols.reshape(1, 2, 4, 4), x)

    def test_adjoint_identity(self, rng):
        """<im2col(x), c> == <x, col2im(c)> — col2im is the exact adjoint."""
        x = rng.standard_normal((2, 3, 6, 6))
        kernel, stride, padding = (3, 3), (2, 2), (1, 1)
        cols = im2col(x, kernel, stride, padding)
        c = rng.standard_normal(cols.shape)
        lhs = float((cols * c).sum())
        rhs = float((x * col2im(c, x.shape, kernel, stride, padding)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_col2im_shape_validation(self, rng):
        with pytest.raises(ValueError):
            col2im(
                rng.standard_normal((1, 9, 9)),
                (1, 1, 4, 4),
                (3, 3),
                (1, 1),
                (1, 1),
            )


class TestMaxPool:
    def test_forward_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out, _ = maxpool2d_forward(x, (2, 2))
        assert np.array_equal(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_backward_routes_to_argmax(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out, arg = maxpool2d_forward(x, (2, 2))
        grad = maxpool2d_backward(np.ones_like(out), arg, x.shape, (2, 2))
        assert grad.sum() == 4.0
        assert grad[0, 0, 1, 1] == 1.0
        assert grad[0, 0, 0, 0] == 0.0

    def test_indivisible_rejected(self, rng):
        with pytest.raises(ValueError):
            maxpool2d_forward(rng.standard_normal((1, 1, 5, 4)), (2, 2))


class TestAvgPool:
    def test_uniform_input(self):
        x = np.full((1, 1, 4, 4), 3.0)
        out = avgpool2d_forward(x, (2, 2))
        assert np.allclose(out, 3.0)

    def test_adjoint_identity(self, rng):
        x = rng.standard_normal((2, 2, 6, 6))
        out = avgpool2d_forward(x, (3, 3), (1, 1), (1, 1))
        g = rng.standard_normal(out.shape)
        lhs = float((out * g).sum())
        # forward is linear, so <Ax, g> == <x, A^T g>
        rhs = float(
            (x * avgpool2d_backward(g, x.shape, (3, 3), (1, 1), (1, 1))).sum()
        )
        assert lhs == pytest.approx(rhs, rel=1e-12)


class TestUpsample:
    def test_forward_repeats(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 1, 2, 2)
        out = upsample_nearest_forward(x, 2)
        assert out.shape == (1, 1, 4, 4)
        assert np.array_equal(out[0, 0, :2, :2], np.full((2, 2), 1.0))

    def test_adjoint_identity(self, rng):
        x = rng.standard_normal((1, 3, 4, 4))
        out = upsample_nearest_forward(x, 2)
        g = rng.standard_normal(out.shape)
        lhs = float((out * g).sum())
        rhs = float((x * upsample_nearest_backward(g, 2)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_backward_shape_validation(self, rng):
        with pytest.raises(ValueError):
            upsample_nearest_backward(rng.standard_normal((1, 1, 5, 4)), 2)
