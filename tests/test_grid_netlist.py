"""Unit tests for the PowerGrid node table / wires map."""

import pytest

from repro.grid.netlist import PowerGrid
from repro.spice.parser import parse_spice


class TestConstruction:
    def test_counts(self, tiny_grid):
        assert tiny_grid.num_nodes == 4
        assert tiny_grid.num_wires == 4

    def test_dense_indices_in_file_order(self, tiny_grid):
        names = [n.name for n in tiny_grid.nodes]
        assert names[0] == "n1_m1_0_0"
        assert tiny_grid.index_of("n1_m1_0_0") == 0

    def test_structured_names_parsed(self, tiny_grid):
        node = tiny_grid.node("n1_m1_1000_0")
        assert node.structured is not None
        assert node.structured.position == (1000, 0)
        assert node.layer == 1

    def test_load_currents_accumulate(self):
        grid = PowerGrid.from_netlist(
            parse_spice("R1 a b 1\nI1 b 0 0.1\nI2 b 0 0.2\nV1 a 0 1\n")
        )
        assert grid.node("b").load_current == pytest.approx(0.3)

    def test_pad_voltage_recorded(self, tiny_grid):
        pads = tiny_grid.pads()
        assert len(pads) == 1
        assert pads[0].pad_voltage == 1.05
        assert pads[0].is_pad

    def test_conflicting_pad_voltages_raise(self):
        with pytest.raises(ValueError, match="two voltages"):
            PowerGrid.from_netlist(
                parse_spice("R1 a b 1\nV1 a 0 1.0\nV2 a 0 0.9\n")
            )

    def test_same_pad_voltage_twice_ok(self):
        grid = PowerGrid.from_netlist(
            parse_spice("R1 a b 1\nV1 a 0 1.0\nV2 a 0 1.0\n")
        )
        assert grid.node("a").pad_voltage == 1.0

    def test_grounded_resistor_rejected(self):
        with pytest.raises(ValueError, match="ground"):
            PowerGrid.from_netlist(parse_spice("R1 a 0 1\n"))

    def test_short_rejected(self):
        with pytest.raises(ValueError, match="short"):
            PowerGrid.from_netlist(parse_spice("R1 a b 0\n"))

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            PowerGrid.from_netlist(parse_spice("R1 a a 1\n"))

    def test_current_source_must_sink_to_ground(self):
        with pytest.raises(ValueError, match="sink to ground"):
            PowerGrid.from_netlist(parse_spice("R1 a b 1\nI1 a b 0.1\n"))

    def test_voltage_source_must_reference_ground(self):
        with pytest.raises(ValueError, match="reference ground"):
            PowerGrid.from_netlist(parse_spice("R1 a b 1\nV1 a b 1\n"))


class TestQueries:
    def test_contains(self, tiny_grid):
        assert "n1_m1_0_0" in tiny_grid
        assert "nope" not in tiny_grid

    def test_wires_at_and_neighbors(self, tiny_grid):
        origin = tiny_grid.index_of("n1_m1_0_0")
        assert tiny_grid.degree(origin) == 2
        neighbor_names = {
            tiny_grid.node(i).name for i in tiny_grid.neighbors(origin)
        }
        assert neighbor_names == {"n1_m1_1000_0", "n1_m1_0_1000"}

    def test_wire_other_endpoint(self, tiny_grid):
        wire = tiny_grid.wires[0]
        assert wire.other(wire.node_a) == wire.node_b
        assert wire.other(wire.node_b) == wire.node_a
        with pytest.raises(ValueError):
            wire.other(9999)

    def test_wire_conductance(self, tiny_grid):
        wire = next(w for w in tiny_grid.wires if w.name == "R2")
        assert wire.conductance == pytest.approx(0.5)

    def test_loads(self, tiny_grid):
        load_names = {n.name for n in tiny_grid.loads()}
        assert load_names == {"n1_m1_1000_1000", "n1_m1_1000_0"}

    def test_layers_present(self, tiny_grid):
        assert tiny_grid.layers_present() == [1]

    def test_nodes_on_layer(self, tiny_grid):
        assert len(tiny_grid.nodes_on_layer(1)) == 4
        assert tiny_grid.nodes_on_layer(2) == []

    def test_total_load_current(self, tiny_grid):
        assert tiny_grid.total_load_current() == pytest.approx(0.015)

    def test_multilayer_design(self, fake_design):
        grid = fake_design.grid
        assert grid.layers_present() == [1, 2, 3]
        assert all(grid.degree(i) > 0 for i in range(grid.num_nodes))
