"""Opt-in larger-scale smoke tests.

Run with ``REPRO_SLOW=1 pytest tests/test_slow_scale.py`` — these exercise
64x64-pixel designs (the scale knob toward the paper's 256x256 setting)
and take a few minutes; the default suite skips them.
"""

import os

import numpy as np
import pytest

slow = pytest.mark.skipif(
    not os.environ.get("REPRO_SLOW"),
    reason="set REPRO_SLOW=1 to run larger-scale smoke tests",
)


@slow
def test_64px_design_end_to_end():
    from repro.data.synthetic import generate_design, make_real_spec
    from repro.solvers.powerrush import PowerRushSimulator

    design = generate_design(make_real_spec("big", seed=1, pixels=64))
    assert design.grid.num_nodes > 5000
    report = PowerRushSimulator(tol=1e-10).simulate_grid(design.grid)
    assert report.solve.converged
    assert report.worst_drop() > 0
    image = report.drop_image(design.geometry)
    assert image.shape == (64, 64)


@slow
def test_64px_fusion_training_improves_on_rough():
    from repro.core.config import FusionConfig
    from repro.core.pipeline import IRFusionPipeline
    from repro.eval.evaluate import evaluate_rough_solutions, evaluate_trainer
    from repro.train.trainer import TrainConfig

    config = FusionConfig(
        pixels=64,
        num_fake=6,
        num_real_train=2,
        num_real_test=2,
        base_channels=6,
        depth=3,
        train=TrainConfig(epochs=8, batch_size=4, use_curriculum=True),
    )
    pipeline = IRFusionPipeline(config)
    pipeline.train()
    _, test_set = pipeline.build_datasets()
    _, fused = evaluate_trainer(pipeline.trainer, test_set)
    rough = evaluate_rough_solutions(test_set)
    assert fused.mae < rough.mae
    assert fused.f1 >= rough.f1
