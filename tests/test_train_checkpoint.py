"""Tests for training checkpoints, bit-exact resume and NaN-loss recovery."""

import numpy as np
import pytest

from repro.models import IRFusionNet
from repro.nn.serialize import load_checkpoint, save_checkpoint
from repro.testing.faults import FaultPlan
from repro.train.trainer import TrainConfig, Trainer


def make_model(dataset):
    return IRFusionNet(
        in_channels=len(dataset.channels), base_channels=4, depth=2, seed=0
    )


def state_of(trainer):
    return {k: v.copy() for k, v in trainer.model.state_dict().items()}


def assert_states_equal(a, b):
    assert sorted(a) == sorted(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key], err_msg=key)


class TestCheckpointIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        arrays = {"model/w": np.arange(6.0).reshape(2, 3), "optim/t": np.int64(4)}
        meta = {"epoch": 3, "nested": {"lr_scale": 0.25}, "note": "hello"}
        save_checkpoint(path, arrays, meta)
        loaded_arrays, loaded_meta = load_checkpoint(path)
        assert_states_equal(
            {k: np.asarray(v) for k, v in arrays.items()}, loaded_arrays
        )
        assert loaded_meta == meta

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, w=np.zeros(3))
        with pytest.raises(ValueError, match="checkpoint"):
            load_checkpoint(path)

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, {"a": np.zeros(2)}, {"epoch": 0})
        leftovers = [p.name for p in tmp_path.iterdir() if "tmp" in p.name]
        assert leftovers == []


class TestOptimizerState:
    def test_adam_state_roundtrip(self, tiny_dataset):
        trainer = Trainer(
            make_model(tiny_dataset), config=TrainConfig(epochs=2, batch_size=2)
        )
        trainer.fit(tiny_dataset)
        state = trainer.optimizer.state_dict()
        assert int(state["t"]) > 0
        other = Trainer(
            make_model(tiny_dataset), config=TrainConfig(epochs=1, batch_size=2)
        )
        other.optimizer.load_state_dict(state)
        assert_states_equal(other.optimizer.state_dict(), state)

    def test_adam_rejects_mismatched_state(self, tiny_dataset):
        trainer = Trainer(make_model(tiny_dataset))
        with pytest.raises(KeyError, match="Adam state mismatch"):
            trainer.optimizer.load_state_dict({"m.0": np.zeros(1)})


class TestBitExactResume:
    def test_resume_matches_uninterrupted_run(self, tiny_dataset, tmp_path):
        ckpt = tmp_path / "mid.npz"
        # Uninterrupted 4-epoch run.
        straight = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(epochs=4, batch_size=2, lr=2e-3),
        )
        straight_history = straight.fit(tiny_dataset)
        # Interrupted run: 4 epochs planned, killed after the epoch-2
        # checkpoint fires (simulated by only training 2 epochs).
        first = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(
                epochs=2,
                batch_size=2,
                lr=2e-3,
                checkpoint_every=2,
                checkpoint_path=str(ckpt),
            ),
        )
        first.fit(tiny_dataset)
        assert ckpt.exists()
        # Fresh process: new trainer, new model, resume from the checkpoint.
        resumed = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(epochs=4, batch_size=2, lr=2e-3),
        )
        resumed_history = resumed.fit(tiny_dataset, resume_from=str(ckpt))
        assert resumed_history.resumed_from == 1
        assert len(resumed_history.epoch_losses) == 4
        np.testing.assert_array_equal(
            resumed_history.epoch_losses, straight_history.epoch_losses
        )
        assert_states_equal(state_of(resumed), state_of(straight))
        assert_states_equal(
            resumed.optimizer.state_dict(), straight.optimizer.state_dict()
        )

    def test_resume_restores_history_prefix(self, tiny_dataset, tmp_path):
        ckpt = tmp_path / "mid.npz"
        first = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(
                epochs=3,
                batch_size=2,
                checkpoint_every=3,
                checkpoint_path=str(ckpt),
            ),
        )
        first_history = first.fit(tiny_dataset)
        resumed = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(epochs=3, batch_size=2),
        )
        resumed_history = resumed.fit(tiny_dataset, resume_from=str(ckpt))
        # Nothing left to train: history is exactly the checkpointed one.
        assert resumed_history.epoch_losses == first_history.epoch_losses


class TestMixedPrecisionCheckpoint:
    @staticmethod
    def mixed_trainer(dataset, epochs=4, **kwargs):
        return Trainer(
            make_model(dataset),
            config=TrainConfig(
                epochs=epochs, batch_size=2, lr=2e-3, precision="mixed", **kwargs
            ),
        )

    def test_checkpoint_stores_float64_master_weights(
        self, tiny_dataset, tmp_path
    ):
        ckpt = tmp_path / "mixed.npz"
        trainer = self.mixed_trainer(
            tiny_dataset, checkpoint_every=2, checkpoint_path=str(ckpt)
        )
        trainer.fit(tiny_dataset)
        arrays, meta = load_checkpoint(ckpt)
        model_keys = [k for k in arrays if k.startswith("model/")]
        assert model_keys
        for key in model_keys:
            assert arrays[key].dtype == np.float64, key
        assert meta["loss_scale"] > 0  # the guard state survives restarts

    def test_resume_matches_uninterrupted_mixed_run(
        self, tiny_dataset, tmp_path
    ):
        ckpt = tmp_path / "mixed.npz"
        straight = self.mixed_trainer(tiny_dataset)
        straight_history = straight.fit(tiny_dataset)
        first = self.mixed_trainer(
            tiny_dataset, epochs=2, checkpoint_every=2, checkpoint_path=str(ckpt)
        )
        first.fit(tiny_dataset)
        resumed = self.mixed_trainer(tiny_dataset)
        resumed_history = resumed.fit(tiny_dataset, resume_from=str(ckpt))
        assert resumed_history.resumed_from == 1
        np.testing.assert_array_equal(
            resumed_history.epoch_losses, straight_history.epoch_losses
        )
        assert_states_equal(state_of(resumed), state_of(straight))
        # The restored compute casts must re-derive from the loaded
        # master weights, not linger from initialisation.
        for _, parameter in resumed.model.named_parameters():
            np.testing.assert_array_equal(
                parameter.compute, parameter.data.astype(np.float32)
            )


class TestNaNRecovery:
    def test_recovery_reloads_and_halves_lr(self, tiny_dataset):
        plan = FaultPlan(nan_loss_epochs={1})
        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(epochs=4, batch_size=2, lr=2e-3),
            fault_hook=plan.loss_hook,
        )
        history = trainer.fit(tiny_dataset)
        assert history.recoveries == [1]
        assert plan.fired("nan_loss") == 1
        assert history.aborted is None
        assert np.isnan(history.epoch_losses[1])
        assert np.isfinite(history.final_loss)
        # LR halves from the recovery epoch onwards.
        assert history.learning_rates[0] == pytest.approx(2e-3)
        assert history.learning_rates[2] == pytest.approx(1e-3)
        assert history.learning_rates[3] == pytest.approx(1e-3)

    def test_recovered_run_keeps_training(self, tiny_dataset):
        plan = FaultPlan(nan_loss_epochs={1})
        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(epochs=6, batch_size=2, lr=2e-3),
            fault_hook=plan.loss_hook,
        )
        history = trainer.fit(tiny_dataset)
        finite = [l for l in history.epoch_losses if np.isfinite(l)]
        assert len(finite) == 5
        assert finite[-1] < finite[0]

    def test_abort_after_max_recoveries(self, tiny_dataset):
        plan = FaultPlan(nan_loss_epochs={0, 1, 2, 3, 4, 5})
        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(epochs=8, batch_size=2, max_recoveries=2),
            fault_hook=plan.loss_hook,
        )
        history = trainer.fit(tiny_dataset)
        assert history.aborted == "nan_loss"
        assert history.recoveries == [0, 1, 2]

    def test_recovery_disabled_records_only(self, tiny_dataset):
        plan = FaultPlan(nan_loss_epochs={1})
        trainer = Trainer(
            make_model(tiny_dataset),
            config=TrainConfig(epochs=3, batch_size=2, nan_recovery=False),
            fault_hook=plan.loss_hook,
        )
        history = trainer.fit(tiny_dataset)
        assert history.recoveries == [1]
        assert history.aborted is None
        assert len(history.learning_rates) == 3
        # No damping without recovery.
        assert history.learning_rates[2] == history.learning_rates[0]


class TestEarlyStopRestore:
    @staticmethod
    def scripted_trainer(dataset, maes, patience):
        trainer = Trainer(
            make_model(dataset),
            config=TrainConfig(
                epochs=len(maes), batch_size=2, early_stop_patience=patience
            ),
        )
        script = iter(maes)
        trainer._validation_mae = lambda validation: next(script)
        return trainer

    def test_best_weights_restored_on_early_stop(self, tiny_dataset):
        # MAE improves, then regresses, then merely *matches* the best:
        # `final <= best` used to skip the restore even though the final
        # weights are 2 stale epochs past the best ones.
        trainer = self.scripted_trainer(tiny_dataset, [0.3, 0.5, 0.3], patience=2)
        snapshots = []
        original = trainer.model.state_dict

        def spying_state_dict():
            state = original()
            snapshots.append({k: v.copy() for k, v in state.items()})
            return state

        trainer.model.state_dict = spying_state_dict
        history = trainer.fit(tiny_dataset, validation=tiny_dataset)
        assert history.stopped_early
        best = snapshots[1]  # captured right after the epoch-0 improvement
        assert_states_equal(state_of(trainer), best)

    def test_nonfinite_mae_never_becomes_best(self, tiny_dataset):
        trainer = self.scripted_trainer(
            tiny_dataset, [float("nan"), 0.4, 0.3], patience=3
        )
        history = trainer.fit(tiny_dataset, validation=tiny_dataset)
        assert not history.stopped_early
        assert history.best_validation_mae == pytest.approx(0.3)
