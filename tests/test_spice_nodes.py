"""Unit tests for the node-name grammar."""

import pytest

from repro.spice.nodes import (
    NodeName,
    format_node_name,
    is_structured_name,
    parse_node_name,
)


class TestParseNodeName:
    def test_roundtrip(self):
        name = format_node_name(1, 4, 12000, 3000)
        node = parse_node_name(name)
        assert node == NodeName(1, 4, 12000, 3000)
        assert str(node) == name

    def test_fields(self):
        node = parse_node_name("n2_m3_100_200")
        assert node.net == 2
        assert node.layer == 3
        assert node.position == (100, 200)

    def test_ground_rejected(self):
        with pytest.raises(ValueError):
            parse_node_name("0")

    @pytest.mark.parametrize(
        "bad", ["n1_m1_1", "x1_m1_1_1", "n1_1_1_1", "n1_m1_1_1_1", ""]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_node_name(bad)

    def test_is_structured(self):
        assert is_structured_name("n1_m1_0_0")
        assert not is_structured_name("0")
        assert not is_structured_name("vdd")

    def test_with_layer(self):
        node = parse_node_name("n1_m1_5_6")
        up = node.with_layer(3)
        assert up.layer == 3
        assert up.position == (5, 6)
        assert up.net == 1

    def test_ordering_is_geometric(self):
        a = NodeName(1, 1, 0, 0)
        b = NodeName(1, 1, 0, 1000)
        c = NodeName(1, 2, 0, 0)
        assert a < b < c
