"""Tests for warm-started incremental analysis."""

import numpy as np
import pytest

from repro.solvers.incremental import IncrementalAnalyzer, IncrementalOptions
from repro.solvers.powerrush import PowerRushSimulator


def native_loads(design, scale=1.0):
    return {n.index: n.load_current * scale for n in design.grid.loads()}


class TestIncrementalAnalyzer:
    def test_first_solve_matches_powerrush(self, fake_design):
        analyzer = IncrementalAnalyzer(fake_design.grid, tol=1e-10)
        step = analyzer.set_loads(native_loads(fake_design))
        report = PowerRushSimulator(tol=1e-10).simulate_grid(fake_design.grid)
        assert np.allclose(step.drops, report.ir_drop, atol=1e-6)

    def test_warm_start_needs_fewer_iterations(self, fake_design):
        # Pin the iterative tier: the direct tier answers in 0 iterations
        # regardless, which would make this property vacuous.
        analyzer = IncrementalAnalyzer(
            fake_design.grid,
            tol=1e-9,
            incremental=IncrementalOptions(direct_max_size=0),
        )
        cold = analyzer.set_loads(native_loads(fake_design))
        # perturb one load by 1 %
        hot = fake_design.grid.loads()[0]
        warm = analyzer.update_loads({hot.index: hot.load_current * 0.01})
        assert warm.iterations < cold.iterations

    def test_warm_result_still_accurate(self, fake_design):
        analyzer = IncrementalAnalyzer(fake_design.grid, tol=1e-10)
        analyzer.set_loads(native_loads(fake_design))
        step = analyzer.set_loads(native_loads(fake_design, 1.02))
        fresh = IncrementalAnalyzer(fake_design.grid, tol=1e-10)
        fresh_step = fresh.set_loads(native_loads(fake_design, 1.02))
        assert np.allclose(step.drops, fresh_step.drops, atol=1e-6)

    def test_identical_reload_is_nearly_free(self, fake_design):
        analyzer = IncrementalAnalyzer(fake_design.grid, tol=1e-8)
        analyzer.set_loads(native_loads(fake_design))
        repeat = analyzer.set_loads(native_loads(fake_design))
        assert repeat.iterations <= 1

    def test_update_merges_deltas(self, fake_design):
        analyzer = IncrementalAnalyzer(fake_design.grid)
        analyzer.set_loads({})
        hot = fake_design.grid.loads()[0]
        analyzer.update_loads({hot.index: 0.01})
        analyzer.update_loads({hot.index: 0.01})
        assert analyzer.current_loads[hot.index] == pytest.approx(0.02)

    def test_loading_pad_rejected(self, fake_design):
        analyzer = IncrementalAnalyzer(fake_design.grid)
        pad = fake_design.grid.pads()[0]
        with pytest.raises(ValueError):
            analyzer.set_loads({pad.index: 0.1})
