"""Edge-case tests for smaller helpers across the codebase."""

import numpy as np
import pytest

from repro.features.resistance import _pixels_on_span
from repro.grid.geometry import GridGeometry, default_layer_stack
from repro.spice.ast import Capacitor, Netlist, Resistor
from repro.spice.parser import parse_spice
from repro.spice.writer import netlist_to_string


@pytest.fixture()
def geometry():
    return GridGeometry(8000, 8000, 1000, 1000, default_layer_stack(1))


def _as_pairs(span):
    rows, cols = span
    return list(zip(rows.tolist(), cols.tolist()))


class TestPixelsOnSpan:
    def test_point(self, geometry):
        assert _as_pairs(_pixels_on_span(geometry, (500, 500), (600, 600))) == [
            (0, 0)
        ]

    def test_returns_index_arrays(self, geometry):
        rows, cols = _pixels_on_span(geometry, (0, 0), (3000, 0))
        assert isinstance(rows, np.ndarray) and isinstance(cols, np.ndarray)
        assert rows.dtype == np.int64 and cols.dtype == np.int64
        image = np.zeros(geometry.shape)
        image[rows, cols] = 1.0  # usable directly for fancy indexing
        assert image.sum() == len(rows)

    def test_horizontal(self, geometry):
        pixels = _as_pairs(_pixels_on_span(geometry, (0, 0), (3000, 0)))
        assert pixels == [(0, 0), (0, 1), (0, 2), (0, 3)]

    def test_vertical(self, geometry):
        pixels = _as_pairs(_pixels_on_span(geometry, (0, 0), (0, 2000)))
        assert pixels == [(0, 0), (1, 0), (2, 0)]

    def test_reversed_endpoints(self, geometry):
        forward = _as_pairs(_pixels_on_span(geometry, (0, 0), (3000, 0)))
        backward = _as_pairs(_pixels_on_span(geometry, (3000, 0), (0, 0)))
        assert forward == backward

    def test_diagonal_covers_endpoints(self, geometry):
        pixels = _as_pairs(_pixels_on_span(geometry, (0, 0), (3000, 3000)))
        assert (0, 0) in pixels
        assert (3, 3) in pixels


class TestVectorizedFeatureEquivalence:
    def test_shortest_path_matches_python_dijkstra(self, fake_design):
        from repro.features.resistance import (
            _shortest_path_resistances_python,
            shortest_path_resistances,
        )

        fast = shortest_path_resistances(fake_design.grid)
        reference = _shortest_path_resistances_python(fake_design.grid)
        np.testing.assert_array_equal(fast, reference)

    def test_negative_resistance_falls_back_to_python(self):
        from repro.features.resistance import shortest_path_resistances
        from repro.grid.netlist import PowerGrid
        from repro.spice.parser import parse_spice

        grid = PowerGrid.from_netlist(
            parse_spice(
                "V1 n1_1_0_0 0 1\n"
                "R1 n1_1_0_0 n1_1_1000_0 2\n"
                "R2 n1_1_5000_5000 n1_1_6000_5000 3\n"  # pad-free island
            )
        )
        # Parser/AST refuse negative resistance, so corrupt the grid the
        # way unguarded downstream mutation would.  The corrupted wire
        # lives in a component no pad reaches: relaxation never touches
        # it, so both implementations must agree it stays infinite.
        island_wire = next(
            w for w in grid.wires if grid.node(w.node_a).name == "n1_1_5000_5000"
        )
        try:
            island_wire.resistance = -3.0
        except (AttributeError, TypeError):
            object.__setattr__(island_wire, "resistance", -3.0)
        grid._wire_arrays_cache = None
        distances = shortest_path_resistances(grid)
        assert distances[grid.node("n1_1_0_0").index] == 0.0
        assert distances[grid.node("n1_1_1000_0").index] == 2.0
        assert np.isinf(distances[grid.node("n1_1_5000_5000").index])

    def test_resistance_map_matches_per_wire_scatter(self, fake_design):
        from repro.features.resistance import (
            _pixels_on_span,
            resistance_map,
        )

        geometry, grid = fake_design.geometry, fake_design.grid
        expected = np.zeros(geometry.shape)
        for wire in grid.wires:
            node_a = grid.node(wire.node_a)
            node_b = grid.node(wire.node_b)
            if node_a.structured is None or node_b.structured is None:
                continue
            rows, cols = _pixels_on_span(
                geometry, node_a.structured.position,
                node_b.structured.position,
            )
            np.add.at(
                expected, (rows, cols), wire.resistance / len(rows)
            )
        np.testing.assert_allclose(
            resistance_map(geometry, grid), expected, atol=1e-10
        )


class TestNetlistAST:
    def test_len_counts_all_kinds(self):
        netlist = parse_spice(
            "R1 a b 1\nI1 b 0 0.1\nV1 a 0 1\nC1 b 0 1e-12\n"
        )
        assert len(netlist) == 4

    def test_elements_iterates_in_kind_order(self):
        netlist = parse_spice("I1 b 0 0.1\nR1 a b 1\nC1 b 0 1e-12\n")
        kinds = [type(e).__name__ for e in netlist.elements()]
        assert kinds == ["Resistor", "CurrentSource", "Capacitor"]

    def test_capacitor_roundtrip(self):
        netlist = Netlist(
            resistors=[Resistor("R1", "a", "b", 1.0)],
            capacitors=[Capacitor("C1", "b", "0", 2.2e-12)],
        )
        reparsed = parse_spice(netlist_to_string(netlist))
        assert reparsed.capacitors == netlist.capacitors

    def test_node_names_include_cap_terminals(self):
        netlist = parse_spice("R1 a b 1\nC1 b c 1e-12\n")
        assert netlist.node_names() == {"a", "b", "c"}

    def test_negative_capacitance_ast_rejected(self):
        with pytest.raises(ValueError):
            Capacitor("C1", "a", "0", -1e-12)

    def test_resistor_conductance_of_short_raises(self):
        short = Resistor("R1", "a", "b", 0.0)
        assert short.is_short
        with pytest.raises(ZeroDivisionError):
            short.conductance


class TestSolveResultHelpers:
    def test_convergence_factor_nan_cases(self):
        from repro.solvers.base import SolveResult

        empty = SolveResult(x=np.zeros(1), iterations=0, converged=False)
        assert np.isnan(empty.convergence_factor())
        exact = SolveResult(
            x=np.zeros(1),
            iterations=1,
            converged=True,
            residual_norms=[1.0, 0.0],
        )
        assert exact.convergence_factor() == 0.0

    def test_timer_laps(self):
        from repro.solvers.base import Timer

        timer = Timer()
        first = timer.lap()
        second = timer.lap()
        assert first >= 0.0 and second >= 0.0


class TestAnalysisResultSignoff:
    def test_signoff_from_analysis(self, fake_design):
        from repro.core.config import FusionConfig
        from repro.core.pipeline import IRFusionPipeline
        from repro.train.trainer import TrainConfig

        config = FusionConfig(
            pixels=16,
            num_fake=2,
            num_real_train=1,
            num_real_test=1,
            base_channels=4,
            depth=2,
            train=TrainConfig(epochs=1, batch_size=4),
            augment=False,
            oversample_fake=1,
            oversample_real=1,
        )
        pipeline = IRFusionPipeline(config)
        pipeline.train()
        _, test_designs = pipeline.generate_designs()
        result = pipeline.analyze_design(test_designs[0])
        report = result.signoff(limit=1e-6)  # absurdly tight: must fail
        assert not report.passed
        generous = result.signoff(limit=10.0)
        assert generous.passed
