"""Edge-case tests for smaller helpers across the codebase."""

import numpy as np
import pytest

from repro.features.resistance import _pixels_on_span
from repro.grid.geometry import GridGeometry, default_layer_stack
from repro.spice.ast import Capacitor, Netlist, Resistor
from repro.spice.parser import parse_spice
from repro.spice.writer import netlist_to_string


@pytest.fixture()
def geometry():
    return GridGeometry(8000, 8000, 1000, 1000, default_layer_stack(1))


class TestPixelsOnSpan:
    def test_point(self, geometry):
        assert _pixels_on_span(geometry, (500, 500), (600, 600)) == [(0, 0)]

    def test_horizontal(self, geometry):
        pixels = _pixels_on_span(geometry, (0, 0), (3000, 0))
        assert pixels == [(0, 0), (0, 1), (0, 2), (0, 3)]

    def test_vertical(self, geometry):
        pixels = _pixels_on_span(geometry, (0, 0), (0, 2000))
        assert pixels == [(0, 0), (1, 0), (2, 0)]

    def test_reversed_endpoints(self, geometry):
        forward = _pixels_on_span(geometry, (0, 0), (3000, 0))
        backward = _pixels_on_span(geometry, (3000, 0), (0, 0))
        assert forward == backward

    def test_diagonal_covers_endpoints(self, geometry):
        pixels = _pixels_on_span(geometry, (0, 0), (3000, 3000))
        assert (0, 0) in pixels
        assert (3, 3) in pixels


class TestNetlistAST:
    def test_len_counts_all_kinds(self):
        netlist = parse_spice(
            "R1 a b 1\nI1 b 0 0.1\nV1 a 0 1\nC1 b 0 1e-12\n"
        )
        assert len(netlist) == 4

    def test_elements_iterates_in_kind_order(self):
        netlist = parse_spice("I1 b 0 0.1\nR1 a b 1\nC1 b 0 1e-12\n")
        kinds = [type(e).__name__ for e in netlist.elements()]
        assert kinds == ["Resistor", "CurrentSource", "Capacitor"]

    def test_capacitor_roundtrip(self):
        netlist = Netlist(
            resistors=[Resistor("R1", "a", "b", 1.0)],
            capacitors=[Capacitor("C1", "b", "0", 2.2e-12)],
        )
        reparsed = parse_spice(netlist_to_string(netlist))
        assert reparsed.capacitors == netlist.capacitors

    def test_node_names_include_cap_terminals(self):
        netlist = parse_spice("R1 a b 1\nC1 b c 1e-12\n")
        assert netlist.node_names() == {"a", "b", "c"}

    def test_negative_capacitance_ast_rejected(self):
        with pytest.raises(ValueError):
            Capacitor("C1", "a", "0", -1e-12)

    def test_resistor_conductance_of_short_raises(self):
        short = Resistor("R1", "a", "b", 0.0)
        assert short.is_short
        with pytest.raises(ZeroDivisionError):
            short.conductance


class TestSolveResultHelpers:
    def test_convergence_factor_nan_cases(self):
        from repro.solvers.base import SolveResult

        empty = SolveResult(x=np.zeros(1), iterations=0, converged=False)
        assert np.isnan(empty.convergence_factor())
        exact = SolveResult(
            x=np.zeros(1),
            iterations=1,
            converged=True,
            residual_norms=[1.0, 0.0],
        )
        assert exact.convergence_factor() == 0.0

    def test_timer_laps(self):
        from repro.solvers.base import Timer

        timer = Timer()
        first = timer.lap()
        second = timer.lap()
        assert first >= 0.0 and second >= 0.0


class TestAnalysisResultSignoff:
    def test_signoff_from_analysis(self, fake_design):
        from repro.core.config import FusionConfig
        from repro.core.pipeline import IRFusionPipeline
        from repro.train.trainer import TrainConfig

        config = FusionConfig(
            pixels=16,
            num_fake=2,
            num_real_train=1,
            num_real_test=1,
            base_channels=4,
            depth=2,
            train=TrainConfig(epochs=1, batch_size=4),
            augment=False,
            oversample_fake=1,
            oversample_real=1,
        )
        pipeline = IRFusionPipeline(config)
        pipeline.train()
        _, test_designs = pipeline.generate_designs()
        result = pipeline.analyze_design(test_designs[0])
        report = result.signoff(limit=1e-6)  # absurdly tight: must fail
        assert not report.passed
        generous = result.signoff(limit=10.0)
        assert generous.passed
