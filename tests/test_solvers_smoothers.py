"""Unit tests for relaxation smoothers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.solvers.smoothers import gauss_seidel, get_smoother, jacobi, sor


@pytest.fixture()
def spd_system(rng):
    n = 30
    main = 4.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    matrix = sp.diags([off, main, off], [-1, 0, 1], format="csr")
    x_true = rng.standard_normal(n)
    return matrix, matrix @ x_true, x_true


def error(matrix, rhs, x, x_true):
    return np.linalg.norm(x - x_true)


class TestJacobi:
    def test_reduces_error(self, spd_system):
        matrix, rhs, x_true = spd_system
        x0 = np.zeros_like(rhs)
        x1 = jacobi(matrix, rhs, x0, sweeps=5)
        assert error(matrix, rhs, x1, x_true) < error(matrix, rhs, x0, x_true)

    def test_more_sweeps_better(self, spd_system):
        matrix, rhs, x_true = spd_system
        x0 = np.zeros_like(rhs)
        e1 = error(matrix, rhs, jacobi(matrix, rhs, x0, 2), x_true)
        e2 = error(matrix, rhs, jacobi(matrix, rhs, x0, 10), x_true)
        assert e2 < e1

    def test_fixed_point_is_solution(self, spd_system):
        matrix, rhs, x_true = spd_system
        out = jacobi(matrix, rhs, x_true.copy(), sweeps=3)
        assert np.allclose(out, x_true)

    def test_zero_diagonal_rejected(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
        with pytest.raises(ValueError):
            jacobi(matrix, np.ones(2), np.zeros(2))

    def test_does_not_mutate_input(self, spd_system):
        matrix, rhs, _ = spd_system
        x0 = np.zeros_like(rhs)
        jacobi(matrix, rhs, x0, sweeps=1)
        assert np.all(x0 == 0.0)


class TestGaussSeidel:
    @pytest.mark.parametrize("direction", ["forward", "backward", "symmetric"])
    def test_reduces_error(self, spd_system, direction):
        matrix, rhs, x_true = spd_system
        x0 = np.zeros_like(rhs)
        x1 = gauss_seidel(matrix, rhs, x0, sweeps=3, direction=direction)
        assert error(matrix, rhs, x1, x_true) < error(matrix, rhs, x0, x_true)

    def test_converges_to_solution(self, spd_system):
        matrix, rhs, x_true = spd_system
        x = np.zeros_like(rhs)
        x = gauss_seidel(matrix, rhs, x, sweeps=200)
        assert np.allclose(x, x_true, atol=1e-8)

    def test_faster_than_jacobi(self, spd_system):
        matrix, rhs, x_true = spd_system
        x0 = np.zeros_like(rhs)
        e_gs = error(matrix, rhs, gauss_seidel(matrix, rhs, x0, 5), x_true)
        e_j = error(matrix, rhs, jacobi(matrix, rhs, x0, 5), x_true)
        assert e_gs < e_j

    def test_bad_direction_rejected(self, spd_system):
        matrix, rhs, _ = spd_system
        with pytest.raises(ValueError):
            gauss_seidel(matrix, rhs, np.zeros_like(rhs), direction="up")


class TestSOR:
    def test_reduces_error(self, spd_system):
        matrix, rhs, x_true = spd_system
        x0 = np.zeros_like(rhs)
        x1 = sor(matrix, rhs, x0, sweeps=5, omega=1.2)
        assert error(matrix, rhs, x1, x_true) < error(matrix, rhs, x0, x_true)

    def test_omega_one_equals_gauss_seidel(self, spd_system):
        matrix, rhs, _ = spd_system
        x0 = np.zeros_like(rhs)
        assert np.allclose(
            sor(matrix, rhs, x0, 3, omega=1.0),
            gauss_seidel(matrix, rhs, x0, 3, direction="forward"),
        )

    @pytest.mark.parametrize("omega", [0.0, 2.0, -1.0])
    def test_omega_bounds(self, spd_system, omega):
        matrix, rhs, _ = spd_system
        with pytest.raises(ValueError):
            sor(matrix, rhs, np.zeros_like(rhs), omega=omega)


def test_get_smoother_lookup():
    assert get_smoother("jacobi") is jacobi
    with pytest.raises(ValueError):
        get_smoother("nope")
