"""Gradient checks for every layer (analytic vs central differences)."""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Concat,
    Conv2d,
    ConvTranspose2d,
    GlobalAvgPool,
    GlobalMaxPool,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
    UpsampleNearest,
)
from repro.nn.containers import Residual, Sequential
from tests.helpers import check_input_gradient, check_parameter_gradients


@pytest.fixture()
def x(rng):
    return rng.standard_normal((2, 3, 8, 8))


class TestConvLayers:
    def test_conv_input_grad(self, x, rng):
        check_input_gradient(Conv2d(3, 4, 3, rng=rng), x, rng)

    def test_conv_param_grad(self, x, rng):
        check_parameter_gradients(Conv2d(3, 2, 3, rng=rng), x, rng)

    def test_conv_asymmetric_kernel(self, x, rng):
        check_input_gradient(Conv2d(3, 2, (1, 7), rng=rng), x, rng)

    def test_conv_stride2(self, x, rng):
        check_input_gradient(
            Conv2d(3, 2, 2, stride=2, padding=0, rng=rng), x, rng
        )

    def test_conv_no_bias(self, x, rng):
        layer = Conv2d(3, 2, 3, bias=False, rng=rng)
        assert layer.bias is None
        check_input_gradient(layer, x, rng)

    def test_conv_same_padding_even_kernel_rejected(self, rng):
        with pytest.raises(ValueError):
            Conv2d(3, 2, 4, padding="same", rng=rng)

    def test_conv_channel_mismatch_rejected(self, x, rng):
        with pytest.raises(ValueError):
            Conv2d(5, 2, 3, rng=rng)(x)

    def test_convtranspose_input_grad(self, x, rng):
        check_input_gradient(ConvTranspose2d(3, 4, 2, stride=2, rng=rng), x, rng)

    def test_convtranspose_param_grad(self, x, rng):
        check_parameter_gradients(
            ConvTranspose2d(3, 2, 2, stride=2, rng=rng), x, rng
        )

    def test_convtranspose_upsamples(self, x, rng):
        out = ConvTranspose2d(3, 4, 2, stride=2, rng=rng)(x)
        assert out.shape == (2, 4, 16, 16)

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Conv2d(3, 2, 3, rng=rng).backward(np.zeros((1, 2, 4, 4)))


class TestNormActivations:
    def test_batchnorm_train_grad(self, x, rng):
        check_input_gradient(BatchNorm2d(3), x, rng, tol=1e-4)

    def test_batchnorm_param_grad(self, x, rng):
        check_parameter_gradients(BatchNorm2d(3), x, rng)

    def test_batchnorm_eval_uses_running_stats(self, x, rng):
        bn = BatchNorm2d(3)
        for _ in range(20):
            bn(rng.standard_normal((4, 3, 8, 8)) * 2.0 + 1.0)
        bn.eval()
        out = bn(np.full((1, 3, 8, 8), 1.0))
        assert np.isfinite(out).all()
        # eval output depends on running stats, not the batch itself
        out2 = bn(np.full((2, 3, 8, 8), 1.0))
        assert np.allclose(out2[0], out[0])

    def test_batchnorm_normalizes_batch(self, rng):
        bn = BatchNorm2d(3)
        out = bn(rng.standard_normal((8, 3, 8, 8)) * 5 + 2)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    @pytest.mark.parametrize(
        "layer_factory",
        [ReLU, lambda: LeakyReLU(0.1), Sigmoid, Tanh, Identity],
    )
    def test_activation_grads(self, layer_factory, x, rng):
        check_input_gradient(layer_factory(), x, rng)


class TestPoolingLayers:
    def test_maxpool_grad(self, x, rng):
        check_input_gradient(MaxPool2d(2), x, rng)

    def test_avgpool_grad(self, x, rng):
        check_input_gradient(AvgPool2d(3, stride=1, padding=1), x, rng)

    def test_global_avg_grad(self, x, rng):
        check_input_gradient(GlobalAvgPool(), x, rng)

    def test_global_max_grad(self, x, rng):
        check_input_gradient(GlobalMaxPool(), x, rng)

    def test_upsample_grad(self, x, rng):
        check_input_gradient(UpsampleNearest(2), x, rng)

    def test_upsample_factor_validation(self):
        with pytest.raises(ValueError):
            UpsampleNearest(0)


class TestLinearAndConcat:
    def test_linear_grads(self, rng):
        x = rng.standard_normal((4, 6))
        check_input_gradient(Linear(6, 3, rng=rng), x, rng)
        check_parameter_gradients(Linear(6, 3, rng=rng), x, rng)

    def test_linear_rejects_4d(self, x, rng):
        with pytest.raises(ValueError):
            Linear(3, 2, rng=rng)(x)

    def test_concat_backward_splits(self, rng):
        concat = Concat()
        a = rng.standard_normal((2, 3, 4, 4))
        b = rng.standard_normal((2, 5, 4, 4))
        out = concat([a, b])
        assert out.shape == (2, 8, 4, 4)
        grads = concat.backward(np.ones_like(out))
        assert grads[0].shape == a.shape
        assert grads[1].shape == b.shape

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            Concat()([])


class TestContainers:
    def test_sequential_grad(self, x, rng):
        model = Sequential(
            Conv2d(3, 4, 3, rng=rng), ReLU(), Conv2d(4, 2, 3, rng=rng)
        )
        check_input_gradient(model, x, rng)

    def test_sequential_indexing(self, rng):
        model = Sequential(ReLU(), Sigmoid())
        assert len(model) == 2
        assert isinstance(model[1], Sigmoid)

    def test_residual_grad(self, x, rng):
        model = Residual(Sequential(Conv2d(3, 3, 3, rng=rng), ReLU()))
        check_input_gradient(model, x, rng)

    def test_residual_shape_mismatch_rejected(self, x, rng):
        with pytest.raises(ValueError):
            Residual(Conv2d(3, 5, 3, rng=rng))(x)
