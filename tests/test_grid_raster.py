"""Unit tests for node-to-pixel rasterisation."""

import numpy as np
import pytest

from repro.grid.geometry import GridGeometry, default_layer_stack
from repro.grid.netlist import PowerGrid
from repro.grid.raster import layer_values_image, rasterize
from repro.spice.parser import parse_spice


@pytest.fixture()
def geometry():
    return GridGeometry(
        width_nm=4000,
        height_nm=4000,
        pixel_w_nm=1000,
        pixel_h_nm=1000,
        layers=default_layer_stack(1, 1000),
    )


@pytest.fixture()
def grid():
    return PowerGrid.from_netlist(
        parse_spice(
            "R1 n1_m1_0_0 n1_m1_1000_0 1\n"
            "R2 n1_m1_1000_0 n1_m1_1500_0 1\n"  # same pixel as 1000_0
            "V1 n1_m1_0_0 0 1\n"
        )
    )


class TestRasterize:
    def test_max_reduction(self, geometry, grid):
        values = np.array([1.0, 5.0, 3.0])
        image = rasterize(geometry, grid.nodes, values, reduce="max")
        assert image[0, 0] == 1.0
        assert image[0, 1] == 5.0  # max of 5 and 3 sharing pixel (0,1)

    def test_sum_reduction(self, geometry, grid):
        values = np.array([1.0, 5.0, 3.0])
        image = rasterize(geometry, grid.nodes, values, reduce="sum")
        assert image[0, 1] == 8.0

    def test_mean_reduction(self, geometry, grid):
        values = np.array([1.0, 5.0, 3.0])
        image = rasterize(geometry, grid.nodes, values, reduce="mean")
        assert image[0, 1] == 4.0

    def test_fill_for_empty_pixels(self, geometry, grid):
        values = np.ones(3)
        image = rasterize(geometry, grid.nodes, values, reduce="max", fill=-1.0)
        assert image[3, 3] == -1.0

    def test_mismatched_lengths_raise(self, geometry, grid):
        with pytest.raises(ValueError):
            rasterize(geometry, grid.nodes, np.ones(2))

    def test_unknown_reduction_raises(self, geometry, grid):
        with pytest.raises(ValueError):
            rasterize(geometry, grid.nodes, np.ones(3), reduce="median")

    def test_output_shape(self, geometry, grid):
        image = rasterize(geometry, grid.nodes, np.ones(3))
        assert image.shape == geometry.shape


class TestLayerValuesImage:
    def test_restricts_to_layer(self, fake_design):
        grid = fake_design.grid
        full = np.arange(grid.num_nodes, dtype=float)
        image1 = layer_values_image(fake_design.geometry, grid, full, layer=1)
        image2 = layer_values_image(fake_design.geometry, grid, full, layer=2)
        assert image1.shape == fake_design.geometry.shape
        assert not np.array_equal(image1, image2)

    def test_shape_validation(self, fake_design):
        with pytest.raises(ValueError):
            layer_values_image(
                fake_design.geometry,
                fake_design.grid,
                np.ones(3),
                layer=1,
            )
