"""Tests for the AMG setup cache (fingerprinting, LRU, diagnostics)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.solvers.amg import AMGOptions
from repro.solvers.amg_pcg import AMGPCGSolver
from repro.solvers.base import SolverOptions
from repro.solvers.cache import (
    AMGSetupCache,
    CacheStats,
    clear_setup_cache,
    configure_setup_cache,
    global_setup_cache,
    matrix_fingerprint,
    setup_cache_disabled,
    setup_cache_stats,
)


def laplacian(n: int, shift: float = 0.0) -> sp.csr_matrix:
    main = np.full(n, 2.0 + shift)
    off = np.full(n - 1, -1.0)
    return sp.diags([off, main, off], [-1, 0, 1]).tocsr()


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_setup_cache()
    yield
    clear_setup_cache()


class TestFingerprint:
    def test_stable_across_copies(self):
        a = laplacian(32)
        assert matrix_fingerprint(a) == matrix_fingerprint(a.copy())

    def test_sensitive_to_values(self):
        assert matrix_fingerprint(laplacian(32)) != matrix_fingerprint(
            laplacian(32, shift=1e-12)
        )

    def test_sensitive_to_structure(self):
        a = laplacian(32)
        b = a.tolil()
        b[0, 5] = -0.5
        b = sp.csr_matrix(b)
        assert matrix_fingerprint(a) != matrix_fingerprint(b)

    def test_sensitive_to_shape(self):
        assert matrix_fingerprint(laplacian(32)) != matrix_fingerprint(
            laplacian(33)
        )


class TestLRU:
    def test_eviction_order(self):
        cache = AMGSetupCache(max_entries=2)
        options = AMGOptions()
        a, b, c = laplacian(8), laplacian(9), laplacian(10)
        _, hit_a = cache.get_or_build(a, options)
        _, hit_b = cache.get_or_build(b, options)
        _, hit_a2 = cache.get_or_build(a, options)  # refresh a
        _, hit_c = cache.get_or_build(c, options)  # evicts b (LRU)
        _, hit_b2 = cache.get_or_build(b, options)
        assert (hit_a, hit_b, hit_a2, hit_c, hit_b2) == (
            False, False, True, False, False,
        )
        assert cache.stats.evictions >= 1
        assert len(cache) == 2

    def test_hit_returns_same_object(self):
        cache = AMGSetupCache(max_entries=2)
        options = AMGOptions()
        a = laplacian(8)
        first, hit1 = cache.get_or_build(a, options)
        second, hit2 = cache.get_or_build(a.copy(), options)
        assert not hit1 and hit2
        assert second is first

    def test_distinct_options_are_distinct_entries(self):
        cache = AMGSetupCache(max_entries=4)
        a = laplacian(16)
        cache.get_or_build(a, AMGOptions())
        _, hit = cache.get_or_build(a, AMGOptions(max_levels=2))
        assert not hit
        assert len(cache) == 2


class TestResize:
    def test_shrink_evicts_oldest_first(self):
        cache = AMGSetupCache(max_entries=4)
        options = AMGOptions()
        mats = [laplacian(8 + k) for k in range(4)]
        for matrix in mats:
            cache.get_or_build(matrix, options)
        cache.get_or_build(mats[0], options)  # refresh 0 -> LRU order 1,2,3,0
        cache.resize(2)
        assert cache.max_entries == 2
        assert len(cache) == 2
        _, hit_recent = cache.get_or_build(mats[3], options)
        _, hit_refreshed = cache.get_or_build(mats[0], options)
        assert hit_recent and hit_refreshed
        _, hit_evicted = cache.get_or_build(mats[1], options)
        assert not hit_evicted

    def test_grow_keeps_entries(self):
        cache = AMGSetupCache(max_entries=2)
        options = AMGOptions()
        for matrix in (laplacian(8), laplacian(9)):
            cache.get_or_build(matrix, options)
        cache.resize(8)
        assert len(cache) == 2
        _, hit = cache.get_or_build(laplacian(8), options)
        assert hit

    def test_rejects_bad_capacity(self):
        cache = AMGSetupCache(max_entries=2)
        with pytest.raises(ValueError, match="max_entries"):
            cache.resize(0)

    def test_configure_resizes_global_cache(self):
        # Regression: configure_setup_cache used to write max_entries and
        # run its eviction loop outside the cache lock, racing any
        # concurrent get_or_build.  It now delegates to resize(), which
        # does both under the lock.
        previous = global_setup_cache().max_entries
        try:
            configure_setup_cache(3)
            assert global_setup_cache().max_entries == 3
        finally:
            configure_setup_cache(previous)

    def test_resize_races_with_get_or_build(self):
        import threading

        cache = AMGSetupCache(max_entries=8)
        options = AMGOptions()
        mats = [laplacian(8 + k) for k in range(6)]
        stop = threading.Event()

        def hammer():
            index = 0
            while not stop.is_set():
                cache.get_or_build(mats[index % len(mats)], options)
                index += 1

        worker = threading.Thread(target=hammer)
        worker.start()
        try:
            for _ in range(25):
                cache.resize(1)
                cache.resize(8)
        finally:
            stop.set()
            worker.join()
        cache.resize(2)
        assert len(cache) <= 2


class TestStats:
    def test_delta(self):
        before = CacheStats(hits=3, misses=2, evictions=1, entries=2)
        after = CacheStats(hits=5, misses=2, evictions=1, entries=2)
        delta = after.delta(before)
        assert delta.hits == 2 and delta.misses == 0
        assert delta.entries == 2  # entries is a level, not a counter

    def test_to_dict_keys(self):
        d = CacheStats().to_dict()
        assert set(d) >= {"hits", "misses", "evictions", "entries"}


class TestSolverIntegration:
    def test_second_solve_hits_and_matches_bitwise(self):
        matrix = laplacian(64)
        rhs = np.linspace(0.1, 1.0, 64)

        cold = AMGPCGSolver(SolverOptions(max_iterations=50))
        x_cold = cold.solve(matrix, rhs).x
        assert not cold.last_setup_was_cache_hit

        warm = AMGPCGSolver(SolverOptions(max_iterations=50))
        x_warm = warm.solve(matrix.copy(), rhs).x
        assert warm.last_setup_was_cache_hit
        np.testing.assert_array_equal(x_cold, x_warm)

    def test_disabled_context_bypasses_cache(self):
        matrix = laplacian(64)
        rhs = np.ones(64)
        AMGPCGSolver(SolverOptions(max_iterations=10)).solve(matrix, rhs)
        before = setup_cache_stats()
        with setup_cache_disabled():
            solver = AMGPCGSolver(SolverOptions(max_iterations=10))
            solver.solve(matrix, rhs)
            assert not solver.last_setup_was_cache_hit
        assert setup_cache_stats().delta(before).hits == 0

    def test_diagnostics_carry_cache_counters(self, fake_design):
        from repro.solvers.powerrush import PowerRushSimulator

        simulator = PowerRushSimulator(max_iterations=2, preset="fast")
        first = simulator.simulate_grid(
            fake_design.grid, supply_voltage=fake_design.spec.supply_voltage
        )
        second = simulator.simulate_grid(
            fake_design.grid, supply_voltage=fake_design.spec.supply_voltage
        )
        assert first.diagnostics.solver_cache is not None
        assert second.diagnostics.solver_cache.hits >= 1
        assert any(
            "amg_setup_cache" in line
            for line in second.diagnostics.summary_lines()
        )
