"""Tests for the transient (dynamic) IR-drop substrate."""

import numpy as np
import pytest

from repro.grid.netlist import PowerGrid
from repro.solvers.powerrush import PowerRushSimulator
from repro.spice.ast import Capacitor
from repro.spice.parser import parse_spice
from repro.transient.simulator import TransientSimulator
from repro.transient.stamper import build_capacitance_matrix, uniform_decap
from repro.transient.waveforms import (
    ConstantWaveform,
    PiecewiseLinearWaveform,
    PulseWaveform,
    StepWaveform,
)
from repro.mna.stamper import build_reduced_system


class TestWaveforms:
    def test_constant(self):
        w = ConstantWaveform(0.3)
        assert w(0.0) == w(99.0) == 0.3
        assert np.allclose(w.sample(np.linspace(0, 1, 5)), 0.3)

    def test_step(self):
        w = StepWaveform(before=0.0, after=1.0, at_time=2.0)
        assert w(1.999) == 0.0
        assert w(2.0) == 1.0

    def test_pulse(self):
        w = PulseWaveform(low=0.1, high=1.0, start=1.0, width=2.0)
        assert w(0.5) == 0.1
        assert w(1.0) == 1.0
        assert w(2.9) == 1.0
        assert w(3.0) == 0.1

    def test_pulse_width_validation(self):
        with pytest.raises(ValueError):
            PulseWaveform(0, 1, 0, 0)

    def test_pwl_interpolates(self):
        w = PiecewiseLinearWaveform([(0.0, 0.0), (1.0, 2.0), (3.0, 0.0)])
        assert w(0.5) == pytest.approx(1.0)
        assert w(2.0) == pytest.approx(1.0)
        assert w(-1.0) == 0.0  # clamped
        assert w(99.0) == 0.0
        assert w.duration == 3.0

    def test_pwl_validation(self):
        with pytest.raises(ValueError):
            PiecewiseLinearWaveform([(0.0, 1.0)])
        with pytest.raises(ValueError):
            PiecewiseLinearWaveform([(0.0, 1.0), (0.0, 2.0)])

    def test_pwl_vector_sampling_matches_scalar(self):
        w = PiecewiseLinearWaveform([(0.0, 0.0), (2.0, 4.0)])
        times = np.linspace(0, 2, 7)
        assert np.allclose(w.sample(times), [w(float(t)) for t in times])


class TestCapacitanceStamping:
    def test_decap_hits_diagonal_only(self, tiny_grid):
        system = build_reduced_system(tiny_grid)
        caps = [Capacitor("C1", "n1_m1_1000_1000", "0", 2e-9)]
        c = build_capacitance_matrix(tiny_grid, system, caps)
        dense = c.toarray()
        assert dense.sum() == pytest.approx(2e-9)
        assert np.count_nonzero(dense) == 1

    def test_node_to_node_coupling(self, tiny_grid):
        system = build_reduced_system(tiny_grid)
        caps = [Capacitor("C1", "n1_m1_1000_0", "n1_m1_0_1000", 1e-9)]
        c = build_capacitance_matrix(tiny_grid, system, caps).toarray()
        assert np.allclose(c, c.T)
        eigenvalues = np.linalg.eigvalsh(c)
        assert eigenvalues.min() >= -1e-20  # positive semidefinite

    def test_cap_to_pad_is_diagonal(self, tiny_grid):
        system = build_reduced_system(tiny_grid)
        caps = [Capacitor("C1", "n1_m1_1000_0", "n1_m1_0_0", 1e-9)]  # to pad
        c = build_capacitance_matrix(tiny_grid, system, caps).toarray()
        assert np.count_nonzero(c) == 1

    def test_unknown_terminal_rejected(self, tiny_grid):
        system = build_reduced_system(tiny_grid)
        with pytest.raises(ValueError):
            build_capacitance_matrix(
                tiny_grid, system, [Capacitor("C1", "nope", "0", 1e-9)]
            )

    def test_uniform_decap_covers_loads(self, fake_design):
        caps = uniform_decap(fake_design.grid, 1e-12)
        assert len(caps) == len(fake_design.grid.loads())
        with pytest.raises(ValueError):
            uniform_decap(fake_design.grid, -1.0)


@pytest.fixture()
def rc_chain():
    """pad -- 1 ohm -- node with 1 nF to ground: a textbook RC."""
    return PowerGrid.from_netlist(
        parse_spice("R1 a b 1.0\nV1 a 0 1.0\n")
    )


class TestTransientSimulator:
    def test_rc_step_response_matches_analytic(self, rc_chain):
        # current step of 10 mA at t=0+: v_b(t) = 1 - R*I*(1 - e^{-t/RC})
        cap = 1e-9
        sim = TransientSimulator(
            rc_chain, [Capacitor("C1", "b", "0", cap)]
        )
        current = 0.01
        tau = 1.0 * cap
        result = sim.run(
            {rc_chain.index_of("b"): StepWaveform(0.0, current, 0.0 + 1e-15)},
            t_end=5 * tau,
            dt=tau / 50,
        )
        drops = result.drops[:, rc_chain.index_of("b")]
        analytic = current * 1.0 * (1.0 - np.exp(-result.times / tau))
        # skip t=0 (DC point with waveform at 0): compare the transient
        assert np.abs(drops[1:] - analytic[1:]).max() < 0.05 * current

    def test_steady_state_matches_static(self, fake_design):
        grid = fake_design.grid
        caps = uniform_decap(grid, 1e-12)
        sim = TransientSimulator(grid, caps)
        waveforms = {
            n.index: ConstantWaveform(n.load_current) for n in grid.loads()
        }
        # the RHS template strips the netlist loads, so driving the native
        # load pattern as constant waveforms reproduces the static solve
        result = sim.run(waveforms, t_end=1e-6, dt=1e-7)
        static = PowerRushSimulator(tol=1e-12).simulate_grid(grid)
        assert np.allclose(result.drops[-1], static.ir_drop, atol=1e-6)

    def test_pulse_creates_then_recovers(self, fake_design):
        grid = fake_design.grid
        caps = uniform_decap(grid, 1e-12)
        sim = TransientSimulator(grid, caps)
        hot = grid.loads()[0]
        pulse = PulseWaveform(low=0.0, high=0.3, start=2e-8, width=4e-8)
        result = sim.run({hot.index: pulse}, t_end=2e-7, dt=1e-8)
        worst = result.worst_drop_over_time()
        peak_drop, peak_time, _ = result.peak()
        assert 2e-8 <= peak_time <= 1.2e-7  # inside/just after the pulse
        assert worst[-1] < peak_drop  # recovered after the pulse ends

    def test_envelope_dominates_every_step(self, fake_design):
        grid = fake_design.grid
        sim = TransientSimulator(grid, uniform_decap(grid, 1e-12))
        hot = grid.loads()[0]
        result = sim.run(
            {hot.index: PulseWaveform(0.0, 0.2, 1e-8, 3e-8)},
            t_end=1e-7,
            dt=1e-8,
        )
        envelope = result.envelope()
        assert (envelope[None, :] >= result.drops - 1e-15).all()

    def test_decap_suppresses_transient_peak(self, fake_design):
        """More decap, lower dynamic peak — the reason decap exists."""
        grid = fake_design.grid
        hot = grid.loads()[0]
        pulse = {hot.index: PulseWaveform(0.0, 0.5, 1e-8, 2e-8)}
        small = TransientSimulator(grid, uniform_decap(grid, 1e-13)).run(
            pulse, t_end=6e-8, dt=2e-9
        )
        large = TransientSimulator(grid, uniform_decap(grid, 2e-11)).run(
            pulse, t_end=6e-8, dt=2e-9
        )
        assert large.peak()[0] < small.peak()[0]

    def test_loading_pad_rejected(self, fake_design):
        sim = TransientSimulator(
            fake_design.grid, uniform_decap(fake_design.grid, 1e-12)
        )
        pad = fake_design.grid.pads()[0]
        with pytest.raises(ValueError):
            sim.run({pad.index: ConstantWaveform(0.1)}, t_end=1e-8, dt=1e-9)

    def test_window_validation(self, rc_chain):
        sim = TransientSimulator(rc_chain, [Capacitor("C1", "b", "0", 1e-9)])
        with pytest.raises(ValueError):
            sim.run({}, t_end=0.0, dt=1e-9)
        with pytest.raises(ValueError):
            sim.run({}, t_end=1e-9, dt=0.0)
