"""Unit tests for topology diagnostics."""

import pytest

from repro.grid.netlist import PowerGrid
from repro.grid.topology import (
    connected_components,
    effective_pad_resistance,
    floating_nodes,
    to_networkx,
    validate_connectivity,
)
from repro.spice.parser import parse_spice


def grid_from(text: str) -> PowerGrid:
    return PowerGrid.from_netlist(parse_spice(text))


class TestGraphView:
    def test_parallel_resistors_combine(self):
        grid = grid_from("R1 a b 2\nR2 a b 2\nV1 a 0 1\n")
        graph = to_networkx(grid)
        edge = graph[grid.index_of("a")][grid.index_of("b")]
        assert edge["conductance"] == pytest.approx(1.0)
        assert edge["resistance"] == pytest.approx(1.0)

    def test_nodes_and_edges(self, tiny_grid):
        graph = to_networkx(tiny_grid)
        assert graph.number_of_nodes() == tiny_grid.num_nodes
        assert graph.number_of_edges() == 4


class TestConnectivity:
    def test_single_component(self, tiny_grid):
        assert len(connected_components(tiny_grid)) == 1

    def test_floating_island_detected(self):
        grid = grid_from("R1 a b 1\nV1 a 0 1\nR2 c d 1\n")
        floating = floating_nodes(grid)
        names = {grid.node(i).name for i in floating}
        assert names == {"c", "d"}

    def test_validate_raises_on_island(self):
        grid = grid_from("R1 a b 1\nV1 a 0 1\nR2 c d 1\n")
        with pytest.raises(ValueError, match="no resistive path"):
            validate_connectivity(grid)

    def test_validate_raises_without_pads(self):
        grid = grid_from("R1 a b 1\nI1 b 0 0.1\n")
        with pytest.raises(ValueError, match="no voltage pads"):
            validate_connectivity(grid)

    def test_validate_passes_tiny(self, tiny_grid):
        validate_connectivity(tiny_grid)

    def test_validate_passes_synthetic(self, fake_design, real_design):
        validate_connectivity(fake_design.grid)
        validate_connectivity(real_design.grid)


class TestEffectivePadResistance:
    def test_series_chain(self):
        grid = grid_from("R1 a b 2\nR2 b c 3\nV1 a 0 1\n")
        assert effective_pad_resistance(grid, grid.index_of("c")) == pytest.approx(5.0)

    def test_pad_itself_zero(self):
        grid = grid_from("R1 a b 2\nV1 a 0 1\n")
        assert effective_pad_resistance(grid, grid.index_of("a")) == 0.0

    def test_floating_is_inf(self):
        grid = grid_from("R1 a b 1\nV1 a 0 1\nR2 c d 1\n")
        assert effective_pad_resistance(grid, grid.index_of("c")) == float("inf")
