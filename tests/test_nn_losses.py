"""Value and gradient tests for losses."""

import numpy as np
import pytest

from repro.nn.losses import (
    HuberLoss,
    KirchhoffLoss,
    MAELoss,
    MSELoss,
    WeightedHotspotLoss,
    _laplacian,
    _laplacian_adjoint,
)


def numeric_loss_grad(loss, prediction, target, eps=1e-6):
    num = np.zeros_like(prediction)
    p = prediction.copy()
    for idx in np.ndindex(*p.shape):
        orig = p[idx]
        p[idx] = orig + eps
        plus = loss.forward(p, target)
        p[idx] = orig - eps
        minus = loss.forward(p, target)
        p[idx] = orig
        num[idx] = (plus - minus) / (2 * eps)
    return num


@pytest.fixture()
def pair(rng):
    return (
        rng.standard_normal((2, 1, 6, 6)),
        rng.standard_normal((2, 1, 6, 6)),
    )


class TestBasicLosses:
    def test_mse_value(self):
        loss = MSELoss()
        assert loss.forward(np.ones((1, 1, 2, 2)), np.zeros((1, 1, 2, 2))) == 1.0

    def test_mae_value(self):
        loss = MAELoss()
        assert loss.forward(
            np.full((1, 1, 2, 2), -2.0), np.zeros((1, 1, 2, 2))
        ) == 2.0

    @pytest.mark.parametrize(
        "loss", [MSELoss(), MAELoss(), HuberLoss(delta=0.7)]
    )
    def test_gradients_match_numeric(self, loss, pair):
        prediction, target = pair
        loss.forward(prediction, target)
        analytic = loss.backward()
        numeric = numeric_loss_grad(loss, prediction, target)
        assert np.abs(analytic - numeric).max() < 1e-6

    def test_huber_quadratic_near_zero(self):
        loss = HuberLoss(delta=1.0)
        small = np.full((1, 1, 1, 1), 0.1)
        assert loss.forward(small, np.zeros_like(small)) == pytest.approx(0.005)

    def test_huber_linear_in_tail(self):
        loss = HuberLoss(delta=1.0)
        big = np.full((1, 1, 1, 1), 10.0)
        assert loss.forward(big, np.zeros_like(big)) == pytest.approx(9.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.zeros((1, 1, 2, 2)), np.zeros((1, 1, 3, 3)))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            MSELoss().backward()


class TestWeightedHotspotLoss:
    def test_hotspot_errors_cost_more(self, rng):
        target = np.zeros((1, 1, 4, 4))
        target[0, 0, 0, 0] = 1.0  # the hotspot
        loss = WeightedHotspotLoss(hotspot_weight=4.0)

        miss_hotspot = target.copy()
        miss_hotspot[0, 0, 0, 0] = 0.0
        cost_hot = loss.forward(miss_hotspot, target)

        miss_cold = target.copy()
        miss_cold[0, 0, 3, 3] = 1.0
        cost_cold = loss.forward(miss_cold, target)
        assert cost_hot > cost_cold

    def test_gradient_matches_numeric(self, pair):
        prediction, target = pair
        target = np.abs(target)
        loss = WeightedHotspotLoss()
        loss.forward(prediction, target)
        analytic = loss.backward()
        numeric = numeric_loss_grad(loss, prediction, target)
        assert np.abs(analytic - numeric).max() < 1e-6

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            WeightedHotspotLoss(hotspot_weight=0.5)
        with pytest.raises(ValueError):
            WeightedHotspotLoss(threshold=1.5)


class TestKirchhoffLoss:
    def test_laplacian_adjoint_identity(self, rng):
        x = rng.standard_normal((2, 1, 6, 6))
        y = rng.standard_normal((2, 1, 6, 6))
        lhs = float((_laplacian(x) * y).sum())
        rhs = float((x * _laplacian_adjoint(y)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_gradient_matches_numeric(self, pair, rng):
        prediction, target = pair
        current = np.abs(rng.standard_normal((1, 1, 6, 6)))
        loss = KirchhoffLoss(current_map=current, weight=0.3)
        loss.forward(prediction, target)
        analytic = loss.backward()
        numeric = numeric_loss_grad(loss, prediction, target)
        # alpha is treated as constant in backward; verify against the
        # same stop-gradient semantics by freezing it numerically
        assert np.abs(analytic - numeric).max() < 5e-3

    def test_without_current_map_is_mae(self, pair):
        prediction, target = pair
        assert KirchhoffLoss().forward(prediction, target) == pytest.approx(
            MAELoss().forward(prediction, target)
        )

    def test_physics_term_penalises_inconsistency(self, rng):
        current = np.abs(rng.standard_normal((1, 1, 8, 8)))
        loss = KirchhoffLoss(current_map=current, weight=1.0)
        target = np.zeros((1, 1, 8, 8))
        rough_noise = rng.standard_normal((1, 1, 8, 8))
        smooth = np.full((1, 1, 8, 8), 0.5)
        assert loss.forward(rough_noise * 0.5, target) > loss.forward(
            smooth * 0.0, target
        )

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            KirchhoffLoss(weight=-1.0)
