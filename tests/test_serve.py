"""Serving daemon: warm caches, admission control, drain, observability.

The daemon runs in-process (``ServeDaemon.start`` on an ephemeral port),
so the tests can reach both sides of the HTTP boundary: requests go over
a real socket with ``urllib``, while cache clears and blocking-analyze
monkeypatches act directly on the service objects.  One subprocess test
exercises the real ``python -m repro.serve`` entry point end to end,
SIGTERM drain included.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.config import FusionConfig
from repro.core.pipeline import IRFusionPipeline
from repro.data.synthetic import generate_design, make_real_spec
from repro.obs import registry as obs_registry
from repro.obs.export import registry_errors, validate_trace_lines
from repro.serve import (
    AnalyzeRequest,
    ModelRegistry,
    RequestError,
    ServeDaemon,
    ServeOptions,
)
from repro.solvers.cache import clear_setup_cache
from repro.spice.writer import netlist_to_string
from repro.train.trainer import TrainConfig


# -- fixtures ------------------------------------------------------------------


@pytest.fixture(scope="module")
def model_dir(tmp_path_factory):
    """A model directory holding one trained tiny checkpoint pair."""
    directory = tmp_path_factory.mktemp("serve-models")
    config = FusionConfig(
        pixels=16,
        num_fake=2,
        num_real_train=1,
        num_real_test=1,
        base_channels=4,
        depth=2,
        train=TrainConfig(epochs=1, batch_size=4),
        augment=False,
        oversample_fake=1,
        oversample_real=1,
    )
    pipeline = IRFusionPipeline(config)
    pipeline.train()
    path = directory / "tiny.npz"
    pipeline.save_model(path)
    train_raw, _ = pipeline.build_datasets()
    meta = {
        "in_channels": len(train_raw.channels),
        "config": {
            "pixels": config.pixels,
            "base_channels": config.base_channels,
            "depth": config.depth,
            "solver_iterations": config.solver_iterations,
        },
    }
    (directory / "tiny.npz.json").write_text(json.dumps(meta))
    return directory


@pytest.fixture(scope="module")
def deck():
    """An irregular (real-spec) deck: its conductance matrix is distinct
    from the fake training designs', so AMG-cache expectations start cold
    after a ``clear_setup_cache``."""
    design = generate_design(make_real_spec("serve_r0", seed=5, pixels=16))
    return netlist_to_string(design.netlist)


def _start_daemon(model_dir, **options):
    daemon = ServeDaemon(
        registry=ModelRegistry(model_dir),
        options=ServeOptions(**options),
        port=0,
    )
    daemon.start()
    return daemon


@pytest.fixture()
def daemon(model_dir):
    d = _start_daemon(model_dir)
    yield d
    d.stop(timeout=10.0)


def _url(daemon, path):
    _, port = daemon.address
    return f"http://127.0.0.1:{port}{path}"


def _post(daemon, body):
    request = urllib.request.Request(
        _url(daemon, "/analyze"),
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _get(daemon, path):
    try:
        with urllib.request.urlopen(_url(daemon, path), timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _wait_for(predicate, timeout=30.0, interval=0.02):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(interval)
    return False


# -- warm caches ---------------------------------------------------------------


class TestWarmCaches:
    def test_second_request_hits_amg_cache_and_is_faster(self, daemon, deck):
        clear_setup_cache()
        status1, first = _post(daemon, {"netlist": deck, "trace": "inline"})
        status2, second = _post(daemon, {"netlist": deck})
        assert status1 == 200 and status2 == 200
        r1, r2 = first["result"], second["result"]
        assert r1["amg_setup_cache"]["misses"] >= 1
        # Warm daemon: the identical deck reuses the first request's AMG
        # hierarchy and must skip setup entirely...
        assert r2["amg_setup_cache"]["hits"] > 0
        assert r2["amg_setup_cache"]["misses"] == 0
        # ...which makes the solve stage measurably faster (it no longer
        # contains hierarchy construction).
        assert r2["stage_seconds"]["solve"] < r1["stage_seconds"]["solve"]
        assert r1["model_fingerprint"] == r2["model_fingerprint"]

    def test_inline_trace_is_schema_and_registry_clean(self, daemon, deck):
        status, body = _post(daemon, {"netlist": deck, "trace": "inline"})
        assert status == 200
        lines = body["result"]["trace"]
        assert validate_trace_lines(lines) == []
        assert registry_errors(lines) == []
        names = {
            json.loads(line)["name"]
            for line in lines
            if json.loads(line).get("kind") == "span"
        }
        assert "serve.request" in names
        assert "solve" in names and "inference" in names

    def test_trace_file_mode_writes_to_trace_dir(self, model_dir, deck, tmp_path):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        d = _start_daemon(model_dir, trace_dir=str(trace_dir))
        try:
            status, body = _post(d, {"netlist": deck, "trace": "file"})
            assert status == 200
            path = body["result"]["trace_path"]
            lines = pathlib.Path(path).read_text().splitlines()
            assert validate_trace_lines(lines) == []
        finally:
            d.stop(timeout=10.0)

    def test_overlapping_same_deck_one_setup_miss_one_hit(self, daemon, deck):
        clear_setup_cache()
        results = []

        def worker():
            results.append(_post(daemon, {"netlist": deck}))

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert [status for status, _ in results] == [200, 200]
        totals = {"hits": 0, "misses": 0}
        for _, body in results:
            cache = body["result"]["amg_setup_cache"]
            totals["hits"] += cache["hits"]
            totals["misses"] += cache["misses"]
        # The single executor serialises the overlapping requests, so
        # exactly one builds the hierarchy and the other reuses it.
        assert totals["misses"] == 1
        assert totals["hits"] == 1

    def test_model_hot_reload_on_checkpoint_change(self, model_dir, deck):
        d = _start_daemon(model_dir)
        try:
            _, first = _post(d, {"netlist": deck})
            old_fingerprint = first["result"]["model_fingerprint"]
            weights = model_dir / "tiny.npz"
            state = dict(np.load(weights))
            key = sorted(state)[0]
            state[key] = state[key] + 1e-3
            np.savez_compressed(os.fspath(weights), **state)
            # Defend against filesystems with coarse mtime granularity.
            stamp = os.stat(weights)
            os.utime(weights, ns=(stamp.st_atime_ns, stamp.st_mtime_ns + 1))
            _, second = _post(d, {"netlist": deck})
            assert second["result"]["model_fingerprint"] != old_fingerprint
            _, metrics = _get(d, "/metrics")
            assert metrics["counters"].get("serve.model_reloads", 0) >= 1
        finally:
            d.stop(timeout=10.0)


# -- admission control and drain -----------------------------------------------


def _block_analysis(daemon):
    """Make the daemon's (sole) model block until the returned event fires."""
    entry = daemon.service.registry.get(None)
    release = threading.Event()
    original = entry.pipeline.analyze_text

    def blocked(text):
        release.wait(60.0)
        return original(text)

    entry.pipeline.analyze_text = blocked
    return release


class TestAdmission:
    def test_queue_full_returns_429_with_json_body(self, model_dir, deck):
        d = _start_daemon(model_dir, queue_limit=1)
        release = _block_analysis(d)
        try:
            status1, first = _post(d, {"netlist": deck, "async": True})
            assert status1 == 202
            assert _wait_for(
                lambda: _get(d, f"/jobs/{first['job_id']}")[1]["state"]
                == "running"
            )
            status2, _ = _post(d, {"netlist": deck, "async": True})
            assert status2 == 202  # fills the queue
            status3, body = _post(d, {"netlist": deck, "async": True})
            assert status3 == 429
            assert body["error"] == "queue_full"
            assert body["queue_limit"] == 1
            _, metrics = _get(d, "/metrics")
            assert metrics["counters"].get("serve.rejected", 0) >= 1
        finally:
            release.set()
            d.stop(timeout=30.0)

    def test_drain_finishes_inflight_and_rejects_new(self, model_dir, deck):
        d = _start_daemon(model_dir)
        release = _block_analysis(d)
        status, submitted = _post(d, {"netlist": deck, "async": True})
        assert status == 202
        assert _wait_for(
            lambda: _get(d, f"/jobs/{submitted['job_id']}")[1]["state"]
            == "running"
        )
        d.begin_drain(timeout=60.0)
        assert _wait_for(lambda: d.service.draining)
        status, body = _post(d, {"netlist": deck})
        assert status == 503
        assert body["error"] == "draining"
        release.set()
        d.stop(timeout=30.0)
        job = d.service.get_job(submitted["job_id"])
        assert job is not None
        assert job.state == "done"
        assert job.result["amg_setup_cache"] is not None

    def test_request_validation_maps_to_400(self, daemon, deck):
        cases = [
            {},  # neither deck form
            {"netlist": deck, "netlist_path": "/tmp/x.sp"},  # both
            {"netlist": deck, "mode": "transient"},  # unsupported mode
            {"netlist": deck, "deadline_seconds": -1},  # bad deadline
            {"netlist": deck, "trace": "file"},  # no --trace-dir
            {"netlist": deck, "frobnicate": True},  # unknown field
        ]
        for payload in cases:
            status, body = _post(daemon, payload)
            assert status == 400, payload
            assert body["error"] == "bad_request", payload

    def test_unknown_model_is_404_and_unknown_job_is_404(self, daemon, deck):
        status, body = _post(daemon, {"netlist": deck, "model": "missing"})
        assert status == 404
        assert body["error"] == "model_not_found"
        status, body = _get(daemon, "/jobs/j999999")
        assert status == 404
        assert body["error"] == "unknown_job"

    def test_healthz_models_and_deadline_roundtrip(self, daemon, deck):
        status, health = _get(daemon, "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0
        status, models = _get(daemon, "/models")
        assert status == 200
        (row,) = models["models"]
        assert row["name"] == "tiny" and row["loaded"]
        assert row["pixels"] == 16
        status, body = _post(
            daemon, {"netlist": deck, "deadline_seconds": 30.0}
        )
        assert status == 200
        assert body["result"]["deadline_seconds"] == 30.0


# -- pool dispatch -------------------------------------------------------------


class TestPoolDispatch:
    def test_pool_mode_serves_requests_with_keepalive(self, model_dir, deck):
        d = _start_daemon(model_dir, pool_jobs=2)
        try:
            from repro.core.pool import get_pool

            assert get_pool()._keepalive >= 1
            status1, first = _post(d, {"netlist": deck})
            status2, second = _post(d, {"netlist": deck})
            assert status1 == 200 and status2 == 200
            assert (
                first["result"]["model_fingerprint"]
                == second["result"]["model_fingerprint"]
            )
        finally:
            d.stop(timeout=60.0)
        assert get_pool()._keepalive == 0


# -- request schema ------------------------------------------------------------


class TestRequestSchema:
    def test_from_payload_roundtrip(self):
        request = AnalyzeRequest.from_payload(
            {"netlist": "* deck", "deadline_seconds": 2, "trace": "inline"}
        )
        assert request.netlist == "* deck"
        assert request.deadline_seconds == 2.0
        assert request.trace == "inline"

    def test_from_payload_rejects_non_object(self):
        with pytest.raises(RequestError):
            AnalyzeRequest.from_payload(["not", "an", "object"])


# -- observability contract ----------------------------------------------------


_EMIT = re.compile(
    r"(?<![\w.])(counter_add|gauge_set|trace|span)\(\s*['\"]([^'\"]+)['\"]"
)
_KIND = {
    "counter_add": "counter",
    "gauge_set": "gauge",
    "trace": "span",
    "span": "span",
}


def test_serve_metric_names_validate_against_registry():
    """Every literal serve-layer emit site must be a declared name."""
    package = (
        pathlib.Path(__file__).resolve().parents[1] / "src" / "repro" / "serve"
    )
    found = set()
    for path in package.rglob("*.py"):
        for call, name in _EMIT.findall(path.read_text()):
            found.add((_KIND[call], name))
    assert ("counter", "serve.requests") in found
    assert ("counter", "serve.rejected") in found
    assert ("gauge", "serve.queue_depth") in found
    assert ("span", "serve.request") in found
    for kind, name in sorted(found):
        assert obs_registry.is_registered(kind, name), (
            f"{kind} name {name!r} emitted by repro.serve is not declared "
            "in repro.obs.registry"
        )


# -- the real entry point ------------------------------------------------------


class TestDaemonProcess:
    def test_sigterm_drains_and_exits_clean(self, model_dir, deck, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.fspath(
            pathlib.Path(__file__).resolve().parents[1] / "src"
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "--model-dir",
                os.fspath(model_dir),
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            port = None
            banner = []
            assert process.stdout is not None
            for line in process.stdout:
                banner.append(line)
                match = re.search(r"listening on http://[^:]+:(\d+)", line)
                if match:
                    port = int(match.group(1))
                    break
            assert port is not None, "".join(banner)

            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/analyze",
                data=json.dumps({"netlist": deck}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=120) as response:
                assert response.status == 200
                body = json.loads(response.read())
            assert body["state"] == "done"

            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=30
            ) as response:
                assert json.loads(response.read())["status"] == "ok"

            process.send_signal(signal.SIGTERM)
            remainder = process.communicate(timeout=60)[0]
            assert process.returncode == 0, remainder
            assert "drained" in remainder
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=30)
