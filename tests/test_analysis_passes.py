"""Seeded-violation fixtures for the callgraph analysis passes."""

import ast
import json
from pathlib import Path

import pytest

from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import AnalysisEngine, ModuleSource
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.passes import default_passes
from repro.analysis.passes.metrics_contract import MetricsContractPass
from repro.analysis.passes.shm_scope import ShmScopePass
from repro.analysis.passes.worker_context import WorkerContextPass


def _mod(path: str, source: str) -> ModuleSource:
    return ModuleSource(
        path=path,
        abspath=Path("/synthetic") / path,
        source=source,
        tree=ast.parse(source),
    )


def _write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


# Two call hops between the pool entry and the violation: the driver
# ships ``work_item``, which calls ``bump``, which mutates a module
# container without a lock.
_DRIVER = (
    "from repro.core.batch import parallel_map\n"
    "from repro.zwork.worker import work_item\n"
    "\n"
    "\n"
    "def run(items):\n"
    "    out, _ = parallel_map(work_item, items, 2)\n"
    "    return out\n"
)
_WORKER = (
    "from repro.zwork.state import bump\n"
    "\n"
    "\n"
    "def work_item(x):\n"
    "    return bump(x)\n"
)
_STATE_RACY = (
    "TABLE = {}\n"
    "\n"
    "\n"
    "def bump(x):\n"
    "    TABLE[x] = x + 1\n"
    "    return TABLE[x]\n"
)
_STATE_LOCKED = (
    "import threading\n"
    "\n"
    "TABLE = {}\n"
    "_TABLE_LOCK = threading.Lock()\n"
    "\n"
    "\n"
    "def bump(x):\n"
    "    with _TABLE_LOCK:\n"
    "        TABLE[x] = x + 1\n"
    "        return TABLE[x]\n"
)


class TestWorkerContextPass:
    def _run(self, modules):
        graph = CallGraph.build(modules)
        return WorkerContextPass().check_graph(modules, graph)

    def _two_hop_modules(self, state_src):
        return [
            _mod("src/repro/zwork/driver.py", _DRIVER),
            _mod("src/repro/zwork/worker.py", _WORKER),
            _mod("src/repro/zwork/state.py", state_src),
        ]

    def test_two_hop_unlocked_mutation_flagged_with_callpath(self):
        findings = self._run(self._two_hop_modules(_STATE_RACY))
        assert len(findings) == 1  # the store; the read does not mutate
        first = findings[0]
        assert first.rule == "worker-context"
        assert first.path == "src/repro/zwork/state.py"
        # the callpath walks entry -> work_item (the hop before bump)
        assert first.callpath[0].startswith("worker of parallel_map")
        assert "repro.zwork.worker.work_item" in first.callpath

    def test_lock_guarded_mutation_is_clean(self):
        assert self._run(self._two_hop_modules(_STATE_LOCKED)) == []

    def test_unreachable_mutation_is_clean(self):
        # same racy module, but nothing ships it to a pool
        modules = [
            _mod("src/repro/zwork/state.py", _STATE_RACY),
            _mod(
                "src/repro/zwork/serial.py",
                "from repro.zwork.state import bump\n"
                "\n"
                "\n"
                "def run(items):\n"
                "    return [bump(x) for x in items]\n",
            ),
        ]
        assert self._run(modules) == []

    def test_thread_creation_in_worker_flagged(self):
        modules = [
            _mod("src/repro/zwork/driver.py", _DRIVER),
            _mod(
                "src/repro/zwork/worker.py",
                "import threading\n"
                "\n"
                "\n"
                "def work_item(x):\n"
                "    t = threading.Thread(target=print)\n"
                "    t.start()\n"
                "    return x\n",
            ),
        ]
        findings = self._run(modules)
        assert len(findings) == 1
        assert "starts a thread" in findings[0].message

    def test_known_task_entry_checks_unpicklable_init(self):
        # _PipelineTask.__call__ is a known shipped entry; its __init__
        # storing a lock on self breaks the task pickle
        modules = [
            _mod(
                "src/repro/core/batch.py",
                "import threading\n"
                "\n"
                "\n"
                "class _PipelineTask:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "    def __call__(self, item):\n"
                "        return item\n",
            ),
        ]
        findings = self._run(modules)
        assert len(findings) == 1
        assert "self._lock" in findings[0].message
        assert "cannot serialise" in findings[0].message


class TestMetricsContractPass:
    def _run(self, source):
        module = _mod("src/repro/zmetrics/emit.py", source)
        return MetricsContractPass().check(module)

    def test_typod_counter_flagged_with_suggestion(self):
        findings = self._run(
            "from repro.obs import counter_add\n"
            "\n"
            "\n"
            "def record():\n"
            "    counter_add('amg_setup_cache.hit')\n"
        )
        assert len(findings) == 1
        assert "did you mean 'amg_setup_cache.hits'" in findings[0].message

    def test_registered_names_are_clean(self):
        assert (
            self._run(
                "from repro.obs import counter_add, gauge_set, span\n"
                "\n"
                "\n"
                "def record(n):\n"
                "    counter_add('amg_setup_cache.hits')\n"
                "    gauge_set('shm.segments_active', n)\n"
                "    with span('solve'):\n"
                "        pass\n"
            )
            == []
        )

    def test_conditional_emit_checks_both_branches(self):
        findings = self._run(
            "from repro.obs import counter_add\n"
            "\n"
            "\n"
            "def record(hit):\n"
            "    counter_add(\n"
            "        'amg_setup_cache.hits' if hit else 'amg_cache.missez'\n"
            "    )\n"
        )
        assert len(findings) == 1
        assert "amg_cache.missez" in findings[0].message

    def test_fstring_outside_any_family_flagged(self):
        findings = self._run(
            "from repro.obs import counter_add\n"
            "\n"
            "\n"
            "def record(reason):\n"
            "    counter_add(f'zzz.unheard_of.{reason}')\n"
        )
        assert len(findings) == 1
        assert "wildcard family" in findings[0].message

    def test_fstring_matching_family_is_clean(self):
        assert (
            self._run(
                "from repro.obs import counter_add\n"
                "\n"
                "\n"
                "def record(reason):\n"
                "    counter_add(f'batch.serial_fallbacks.{reason}')\n"
            )
            == []
        )

    def test_dynamic_name_variable_skipped(self):
        # non-literal names belong to the runtime trace validator
        assert (
            self._run(
                "from repro.obs import counter_add\n"
                "\n"
                "\n"
                "def record(name):\n"
                "    counter_add(name)\n"
            )
            == []
        )


class TestShmScopePass:
    def _run(self, body):
        module = _mod(
            "src/repro/zshm/use.py",
            "from repro.core.shm import ARENA\n\n\n" + body,
        )
        return ShmScopePass().check(module)

    def test_retain_without_release_on_exception_edge(self):
        findings = self._run(
            "def leak(items, encode):\n"
            "    scope = ARENA.scope('t')\n"
            "    data = encode(items)\n"
            "    ARENA.release_scope(scope)\n"
            "    return data\n"
        )
        assert len(findings) == 1
        assert findings[0].rule == "shm-scope"
        assert "an exception here leaks it" in findings[0].message
        # the finding points at the raise-capable call, not the open
        assert findings[0].snippet == "data = encode(items)"

    def test_try_finally_release_is_clean(self):
        assert (
            self._run(
                "def safe(items, encode):\n"
                "    scope = ARENA.scope('t')\n"
                "    try:\n"
                "        data = encode(items)\n"
                "    finally:\n"
                "        ARENA.release_scope(scope)\n"
                "    return data\n"
            )
            == []
        )

    def test_fall_through_without_release_flagged(self):
        findings = self._run(
            "def forgot():\n"
            "    scope = ARENA.scope('t')\n"
            "    return None\n"
        )
        assert len(findings) == 1
        assert "this exit leaks it" in findings[0].message

    def test_ownership_transfer_ends_responsibility(self):
        assert (
            self._run(
                "def handoff(job):\n"
                "    scope = ARENA.scope('t')\n"
                "    job.scope = scope\n"
                "    return job\n"
            )
            == []
        )

    def test_handler_release_covers_body_but_not_fall_through(self):
        # handlers release on the exception edges, but the normal path
        # walks out of the try still holding the handle
        findings = self._run(
            "def half(items, encode):\n"
            "    scope = ARENA.scope('t')\n"
            "    try:\n"
            "        data = encode(items)\n"
            "    except Exception:\n"
            "        ARENA.release_scope(scope)\n"
            "        raise\n"
            "    return data\n"
        )
        assert len(findings) == 1
        assert "this exit leaks it" in findings[0].message

    def test_readonly_view_write_flagged(self):
        findings = self._run(
            "def patch(desc, value):\n"
            "    view = desc.resolve()\n"
            "    view[0] = value\n"
        )
        assert len(findings) == 1
        assert "read-only shm view" in findings[0].message

    def test_writable_view_write_is_clean(self):
        assert (
            self._run(
                "def patch(desc, value):\n"
                "    view = desc.resolve(writable=True)\n"
                "    view[0] = value\n"
            )
            == []
        )

    def test_descriptor_escape_from_released_scope(self):
        findings = self._run(
            "def escape(x):\n"
            "    scope = ARENA.scope('t')\n"
            "    try:\n"
            "        desc = ARENA.share(x, scope)\n"
            "    finally:\n"
            "        ARENA.release_scope(scope)\n"
            "    return desc\n"
        )
        assert len(findings) == 1
        assert "dangling" in findings[0].message


@pytest.fixture()
def seeded_worker_tree(tmp_path):
    _write(tmp_path, "src/repro/zwork/driver.py", _DRIVER)
    _write(tmp_path, "src/repro/zwork/worker.py", _WORKER)
    _write(tmp_path, "src/repro/zwork/state.py", _STATE_RACY)
    return tmp_path


class TestEngineAndCli:
    def test_engine_runs_passes_and_attaches_callpath(
        self, seeded_worker_tree
    ):
        engine = AnalysisEngine(seeded_worker_tree, rules=default_passes())
        report = engine.run(["src"])
        rules = {f.rule for f in report.findings}
        assert rules == {"worker-context"}
        assert all(f.callpath for f in report.findings)
        formatted = report.findings[0].format()
        assert "[reachable via" in formatted

    def test_pragma_suppresses_a_pass_finding(self, tmp_path):
        _write(tmp_path, "src/repro/zwork/driver.py", _DRIVER)
        _write(tmp_path, "src/repro/zwork/worker.py", _WORKER)
        _write(
            tmp_path,
            "src/repro/zwork/state.py",
            _STATE_RACY.replace(
                "    TABLE[x] = x + 1\n",
                "    TABLE[x] = x + 1"
                "  # repro: allow(worker-context) — test-only\n",
            ),
        )
        report = AnalysisEngine(tmp_path, rules=default_passes()).run(["src"])
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["worker-context"]

    def test_strict_callgraph_cli_fails_on_seeded_tree(
        self, seeded_worker_tree
    ):
        rc = analysis_main(
            [
                "--root", str(seeded_worker_tree), "src",
                "--rules", "callgraph", "--strict", "--no-models",
            ]
        )
        assert rc == 1

    def test_json_report_carries_callpath(self, seeded_worker_tree, capsys):
        rc = analysis_main(
            [
                "--root", str(seeded_worker_tree), "src",
                "--rules", "callgraph", "--no-models", "--json",
            ]
        )
        assert rc == 0  # lenient mode reports without failing
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["rules"] == "callgraph"
        assert payload["duration_seconds"] >= 0.0
        finding = next(
            f for f in payload["findings"] if f["rule"] == "worker-context"
        )
        assert finding["path"] == "src/repro/zwork/state.py"
        assert isinstance(finding["callpath"], list) and finding["callpath"]
        assert finding["fingerprint"].startswith(
            "worker-context:src/repro/zwork/state.py:"
        )

    def test_write_baseline_and_strict_are_mutually_exclusive(
        self, tmp_path, capsys
    ):
        with pytest.raises(SystemExit) as exc:
            analysis_main(
                [
                    "--root", str(tmp_path), "src",
                    "--write-baseline", "--strict",
                ]
            )
        assert exc.value.code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_budget_overrun_fails(self, seeded_worker_tree):
        rc = analysis_main(
            [
                "--root", str(seeded_worker_tree), "src",
                "--rules", "local", "--no-models",
                "--budget-seconds", "0.0",
            ]
        )
        assert rc == 1
