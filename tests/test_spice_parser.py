"""Unit tests for the SPICE parser."""

import pytest

from repro.spice.ast import CurrentSource, Resistor, VoltageSource
from repro.spice.parser import SpiceParseError, parse_spice, parse_value


class TestParseValue:
    def test_plain_float(self):
        assert parse_value("1.5") == 1.5

    def test_scientific(self):
        assert parse_value("2e-3") == 2e-3

    def test_kilo(self):
        assert parse_value("2k") == 2000.0

    def test_milli(self):
        assert parse_value("3m") == pytest.approx(3e-3)

    def test_micro(self):
        assert parse_value("4u") == pytest.approx(4e-6)

    def test_nano_pico_femto(self):
        assert parse_value("1n") == pytest.approx(1e-9)
        assert parse_value("1p") == pytest.approx(1e-12)
        assert parse_value("1f") == pytest.approx(1e-15)

    def test_meg_beats_milli(self):
        assert parse_value("2meg") == pytest.approx(2e6)

    def test_case_insensitive(self):
        assert parse_value("2K") == 2000.0
        assert parse_value("2MEG") == pytest.approx(2e6)

    def test_giga_tera(self):
        assert parse_value("1g") == pytest.approx(1e9)
        assert parse_value("1t") == pytest.approx(1e12)

    def test_bad_token_raises(self):
        with pytest.raises(SpiceParseError):
            parse_value("abc")

    def test_empty_raises(self):
        with pytest.raises(SpiceParseError):
            parse_value("   ")


class TestParseSpice:
    def test_elements_parsed(self):
        netlist = parse_spice(
            "R1 a b 2.0\nI1 a 0 0.1\nV1 c 0 1.0\n.end\n"
        )
        assert netlist.resistors == [Resistor("R1", "a", "b", 2.0)]
        assert netlist.current_sources == [CurrentSource("I1", "a", "0", 0.1)]
        assert netlist.voltage_sources == [VoltageSource("V1", "c", "0", 1.0)]

    def test_first_comment_is_title(self):
        netlist = parse_spice("* my design\nR1 a b 1\n")
        assert netlist.title == "my design"

    def test_later_comments_ignored(self):
        netlist = parse_spice("* t\n* another\nR1 a b 1\n")
        assert netlist.title == "t"
        assert len(netlist.resistors) == 1

    def test_blank_lines_skipped(self):
        netlist = parse_spice("\n\nR1 a b 1\n\n")
        assert len(netlist) == 1

    def test_end_stops_parsing(self):
        netlist = parse_spice("R1 a b 1\n.end\nR2 c d 1\n")
        assert len(netlist.resistors) == 1

    def test_lowercase_elements(self):
        netlist = parse_spice("r1 a b 1\ni1 a 0 1\nv1 c 0 1\n")
        assert len(netlist) == 3

    def test_capacitor_parsed(self):
        netlist = parse_spice("C1 a b 1e-12\n")
        assert len(netlist.capacitors) == 1
        assert netlist.capacitors[0].capacitance == pytest.approx(1e-12)

    def test_negative_capacitance_raises(self):
        with pytest.raises(SpiceParseError, match="negative capacitance"):
            parse_spice("C1 a b -1e-12\n")

    def test_unknown_element_raises(self):
        with pytest.raises(SpiceParseError, match="unsupported element"):
            parse_spice("L1 a b 1e-9\n")

    def test_unknown_directive_raises(self):
        with pytest.raises(SpiceParseError, match="unsupported directive"):
            parse_spice(".tran 1n 10n\n")

    def test_wrong_token_count_raises(self):
        with pytest.raises(SpiceParseError, match="tokens"):
            parse_spice("R1 a b\n")

    def test_negative_resistance_raises(self):
        with pytest.raises(SpiceParseError, match="negative"):
            parse_spice("R1 a b -5\n")

    def test_error_carries_line_number(self):
        with pytest.raises(SpiceParseError, match="line 2"):
            parse_spice("R1 a b 1\nL1 a b 1\n")

    def test_node_names_excludes_ground(self):
        netlist = parse_spice("R1 a b 1\nI1 b 0 0.1\n")
        assert netlist.node_names() == {"a", "b"}

    def test_total_load_current(self):
        netlist = parse_spice("I1 a 0 0.1\nI2 b 0 0.3\n")
        assert netlist.total_load_current() == pytest.approx(0.4)

    def test_supply_voltage_single(self):
        netlist = parse_spice("V1 a 0 1.05\nV2 b 0 1.05\n")
        assert netlist.supply_voltage() == 1.05

    def test_supply_voltage_conflict_raises(self):
        netlist = parse_spice("V1 a 0 1.05\nV2 b 0 0.9\n")
        with pytest.raises(ValueError, match="multiple supply"):
            netlist.supply_voltage()

    def test_supply_voltage_missing_raises(self):
        netlist = parse_spice("R1 a b 1\n")
        with pytest.raises(ValueError, match="no voltage"):
            netlist.supply_voltage()

    def test_parse_file(self, tmp_path):
        path = tmp_path / "deck.sp"
        path.write_text("R1 a b 1\n.end\n")
        from repro.spice.parser import parse_spice_file

        assert len(parse_spice_file(path).resistors) == 1
