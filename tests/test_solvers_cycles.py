"""Unit tests for V/W/K multigrid cycles."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.solvers.amg import AMGOptions, build_hierarchy
from repro.solvers.cycles import CycleOptions, CyclePreconditioner


def laplacian_2d(n: int) -> sp.csr_matrix:
    eye = sp.identity(n)
    main = 2.0 * np.ones(n)
    off = -np.ones(n - 1)
    one_d = sp.diags([off, main, off], [-1, 0, 1])
    return sp.csr_matrix(sp.kron(eye, one_d) + sp.kron(one_d, eye))


@pytest.fixture(scope="module")
def problem():
    matrix = laplacian_2d(16)
    rng = np.random.default_rng(3)
    x_true = rng.standard_normal(matrix.shape[0])
    return matrix, x_true, matrix @ x_true


@pytest.fixture(scope="module")
def hierarchy(problem):
    matrix, _, _ = problem
    return build_hierarchy(matrix, AMGOptions(max_coarse_size=30))


def error_after_cycles(hierarchy, problem, options, n_cycles=5):
    matrix, x_true, rhs = problem
    preconditioner = CyclePreconditioner(hierarchy, options)
    x = np.zeros_like(rhs)
    for _ in range(n_cycles):
        x = x + preconditioner.apply(rhs - matrix @ x)
    return float(np.linalg.norm(x - x_true) / np.linalg.norm(x_true))


class TestCycles:
    @pytest.mark.parametrize("cycle", ["v", "w", "k"])
    def test_stationary_iteration_converges(self, hierarchy, problem, cycle):
        err = error_after_cycles(hierarchy, problem, CycleOptions(cycle=cycle))
        assert err < 1e-3

    def test_k_at_least_as_good_as_v(self, hierarchy, problem):
        err_v = error_after_cycles(hierarchy, problem, CycleOptions(cycle="v"), 3)
        err_k = error_after_cycles(hierarchy, problem, CycleOptions(cycle="k"), 3)
        assert err_k <= err_v * 1.05

    def test_zero_residual_maps_to_zero(self, hierarchy, problem):
        matrix, _, _ = problem
        preconditioner = CyclePreconditioner(hierarchy, CycleOptions())
        out = preconditioner.apply(np.zeros(matrix.shape[0]))
        assert np.allclose(out, 0.0)

    def test_jacobi_smoother_works(self, hierarchy, problem):
        err = error_after_cycles(
            hierarchy,
            problem,
            CycleOptions(cycle="v", smoother="jacobi", presmooth_sweeps=2,
                         postsmooth_sweeps=2),
            n_cycles=10,
        )
        assert err < 1e-2

    def test_v_cycle_linear_operator(self, hierarchy, problem):
        """A V-cycle with fixed smoothing is a linear operator."""
        matrix, _, _ = problem
        rng = np.random.default_rng(0)
        preconditioner = CyclePreconditioner(hierarchy, CycleOptions(cycle="v"))
        a = rng.standard_normal(matrix.shape[0])
        b = rng.standard_normal(matrix.shape[0])
        combined = preconditioner.apply(2.0 * a + 3.0 * b)
        separate = 2.0 * preconditioner.apply(a) + 3.0 * preconditioner.apply(b)
        assert np.allclose(combined, separate, atol=1e-10)

    def test_single_level_hierarchy_is_direct_solve(self):
        matrix = laplacian_2d(4)
        hierarchy = build_hierarchy(matrix, AMGOptions(max_coarse_size=10**6))
        assert hierarchy.num_levels == 1
        preconditioner = CyclePreconditioner(hierarchy)
        rhs = np.ones(matrix.shape[0])
        x = preconditioner.apply(rhs)
        assert np.allclose(matrix @ x, rhs, atol=1e-10)


class TestCycleOptions:
    @pytest.mark.parametrize(
        "kwargs",
        [{"cycle": "x"}, {"smoother": "nope"}, {"kcycle_steps": 0}],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            CycleOptions(**kwargs)
