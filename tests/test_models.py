"""Tests shared across all seven registered models."""

import numpy as np
import pytest

from repro.models import IRFusionNet, create_model, preferred_loss
from repro.models.registry import DISPLAY_NAMES, MODEL_REGISTRY
from repro.models.unet_blocks import FlexUNet
from repro.nn.losses import KirchhoffLoss, MAELoss, WeightedHotspotLoss

ALL_MODELS = sorted(MODEL_REGISTRY)


@pytest.fixture()
def x(rng):
    return rng.standard_normal((2, 5, 16, 16))


@pytest.mark.parametrize("name", ALL_MODELS)
class TestEveryModel:
    def test_output_shape(self, name, x):
        model = create_model(name, in_channels=5, base_channels=4, depth=2, seed=0)
        assert model(x).shape == (2, 1, 16, 16)

    def test_backward_shape(self, name, x):
        model = create_model(name, in_channels=5, base_channels=4, depth=2, seed=0)
        y = model(x)
        grad = model.backward(np.ones_like(y))
        assert grad.shape == x.shape

    def test_gradients_flow_to_all_parameters(self, name, x, rng):
        model = create_model(name, in_channels=5, base_channels=4, depth=2, seed=0)
        # the head is zero-initialised (gradients stop there at init), so
        # perturb all weights first to emulate a model mid-training
        for p in model.parameters():
            p.data += 0.05 * rng.standard_normal(p.data.shape)
        y = model(x)
        model.zero_grad()
        model.backward(rng.standard_normal(y.shape))
        with_grad = sum(1 for p in model.parameters() if np.any(p.grad != 0))
        assert with_grad >= 0.9 * len(model.parameters())

    def test_deterministic_under_seed(self, name, x):
        a = create_model(name, in_channels=5, base_channels=4, depth=2, seed=3)
        b = create_model(name, in_channels=5, base_channels=4, depth=2, seed=3)
        assert np.allclose(a(x), b(x))

    def test_one_training_step_reduces_loss(self, name, x, rng):
        from repro.nn.optim import Adam

        model = create_model(name, in_channels=5, base_channels=4, depth=2, seed=0)
        target = rng.standard_normal((2, 1, 16, 16))
        loss = MAELoss()
        optimizer = Adam(model.parameters(), lr=1e-2)
        before = loss.forward(model(x), target)
        for _ in range(5):
            prediction = model(x)
            loss.forward(prediction, target)
            model.zero_grad()
            model.backward(loss.backward())
            optimizer.step()
        after = loss.forward(model(x), target)
        assert after < before


class TestZeroInitHead:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_initial_prediction_is_zero(self, name, x):
        model = create_model(name, in_channels=5, base_channels=4, depth=2, seed=0)
        model.eval()
        assert np.allclose(model(x), 0.0)


class TestIRFusionAblations:
    def test_without_inception_uses_plain_blocks(self, x):
        model = IRFusionNet(
            in_channels=5, base_channels=4, depth=2, use_inception=False
        )
        assert model(x).shape == (2, 1, 16, 16)
        assert not model.use_inception

    def test_without_cbam(self, x):
        model = IRFusionNet(in_channels=5, base_channels=4, depth=2, use_cbam=False)
        assert model(x).shape == (2, 1, 16, 16)

    def test_variants_have_different_param_counts(self):
        full = IRFusionNet(in_channels=5, base_channels=4, depth=2)
        no_cbam = IRFusionNet(in_channels=5, base_channels=4, depth=2, use_cbam=False)
        assert full.num_parameters() > no_cbam.num_parameters()


class TestRegistry:
    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            create_model("resnet", in_channels=3)

    def test_display_names_cover_registry(self):
        assert set(DISPLAY_NAMES) == set(MODEL_REGISTRY)

    def test_preferred_losses(self):
        assert isinstance(preferred_loss("iredge"), MAELoss)
        assert isinstance(preferred_loss("pgau"), WeightedHotspotLoss)
        assert isinstance(preferred_loss("ir_fusion"), WeightedHotspotLoss)
        assert isinstance(
            preferred_loss("irpnet", current_map=np.ones((1, 1, 4, 4))),
            KirchhoffLoss,
        )

    def test_preferred_loss_unknown_model(self):
        with pytest.raises(ValueError):
            preferred_loss("nope")


class TestFlexUNet:
    def test_indivisible_input_rejected(self, rng):
        model = FlexUNet(in_channels=2, base_channels=4, depth=3)
        with pytest.raises(ValueError):
            model(rng.standard_normal((1, 2, 12, 12)))

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            FlexUNet(in_channels=2, depth=0)

    def test_input_gradient_correct(self, rng):
        from tests.helpers import check_input_gradient

        model = FlexUNet(in_channels=2, base_channels=3, depth=1, seed=0)
        x = rng.standard_normal((1, 2, 4, 4))
        # head is zero-init; take one perturbation step so gradients flow
        for p in model.parameters():
            p.data += 0.01 * rng.standard_normal(p.data.shape)
        check_input_gradient(model, x, rng, tol=1e-4)
