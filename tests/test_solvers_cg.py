"""Unit tests for CG and Jacobi-PCG."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.mna.stamper import build_reduced_system
from repro.solvers.base import SolverOptions
from repro.solvers.cg import CGSolver, JacobiPCGSolver


@pytest.fixture()
def pg_system(fake_design):
    return build_reduced_system(fake_design.grid)


class TestCG:
    def test_converges_on_pg_system(self, pg_system):
        result = CGSolver(SolverOptions(tol=1e-10)).solve(
            pg_system.matrix, pg_system.rhs
        )
        assert result.converged
        assert pg_system.relative_residual(result.x) < 1e-9

    def test_respects_max_iterations(self, pg_system):
        result = CGSolver(SolverOptions(max_iterations=3)).solve(
            pg_system.matrix, pg_system.rhs
        )
        assert result.iterations == 3
        assert not result.converged

    def test_residual_history_monotone_overall(self, pg_system):
        result = CGSolver(SolverOptions(tol=1e-10)).solve(
            pg_system.matrix, pg_system.rhs
        )
        history = np.array(result.residual_norms)
        assert history[-1] < history[0] * 1e-8

    def test_initial_guess_exact_returns_immediately(self, pg_system):
        import scipy.sparse.linalg as sla

        exact = np.asarray(sla.spsolve(pg_system.matrix.tocsc(), pg_system.rhs))
        result = CGSolver(SolverOptions(tol=1e-8)).solve(
            pg_system.matrix, pg_system.rhs, x0=exact
        )
        assert result.iterations == 0
        assert result.converged

    def test_zero_rhs_returns_zero(self, pg_system):
        result = CGSolver().solve(pg_system.matrix, np.zeros(pg_system.size))
        assert result.converged
        assert np.allclose(result.x, 0.0)

    def test_history_can_be_disabled(self, pg_system):
        result = CGSolver(
            SolverOptions(tol=1e-10, record_history=False)
        ).solve(pg_system.matrix, pg_system.rhs)
        assert result.residual_norms == []
        assert np.isnan(result.final_residual)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            CGSolver().solve(sp.eye(3, format="csr"), np.ones(4))


class TestJacobiPCG:
    def test_converges(self, pg_system):
        result = JacobiPCGSolver(SolverOptions(tol=1e-10)).solve(
            pg_system.matrix, pg_system.rhs
        )
        assert result.converged

    def test_not_slower_than_cg_on_scaled_system(self, rng):
        # Badly diagonally scaled SPD system: Jacobi PCG should win.
        n = 80
        scales = 10.0 ** rng.uniform(-3, 3, size=n)
        lap = sp.diags(
            [-np.ones(n - 1), 2.0 * np.ones(n), -np.ones(n - 1)],
            [-1, 0, 1],
        ).toarray()
        matrix = sp.csr_matrix(np.diag(scales) @ lap @ np.diag(scales) + np.eye(n))
        rhs = rng.standard_normal(n)
        options = SolverOptions(tol=1e-8, max_iterations=5000)
        plain = CGSolver(options).solve(matrix, rhs)
        jacobi = JacobiPCGSolver(options).solve(matrix, rhs)
        assert jacobi.converged
        assert jacobi.iterations <= plain.iterations

    def test_rejects_nonpositive_diagonal(self):
        matrix = sp.csr_matrix(np.array([[1.0, 0.0], [0.0, -1.0]]))
        with pytest.raises(ValueError):
            JacobiPCGSolver().solve(matrix, np.ones(2))


class TestSolverOptions:
    def test_negative_tol_rejected(self):
        with pytest.raises(ValueError):
            SolverOptions(tol=-1)

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            SolverOptions(max_iterations=-1)

    def test_convergence_factor(self, pg_system):
        result = CGSolver(SolverOptions(tol=1e-10)).solve(
            pg_system.matrix, pg_system.rhs
        )
        factor = result.convergence_factor()
        assert 0.0 <= factor < 1.0
