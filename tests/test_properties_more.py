"""Additional property-based tests: electrical and data-pipeline invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import generate_design, make_fake_spec, make_real_spec
from repro.grid.netlist import PowerGrid
from repro.grid.topology import validate_connectivity
from repro.mna.stamper import build_reduced_system
from repro.solvers.direct import DirectSolver

design_seeds = st.integers(0, 10_000)


class TestGeneratedDesignProperties:
    @given(seed=design_seeds, kind=st.sampled_from(["fake", "real"]))
    @settings(max_examples=12, deadline=None)
    def test_every_design_is_solvable(self, seed, kind):
        maker = make_fake_spec if kind == "fake" else make_real_spec
        design = generate_design(maker(f"p{seed}", seed=seed, pixels=16))
        validate_connectivity(design.grid)
        system = build_reduced_system(design.grid)
        result = DirectSolver().solve(system.matrix, system.rhs)
        voltages = system.scatter(result.x)
        vdd = design.spec.supply_voltage
        # physical sanity: all node voltages within (0, vdd]
        assert voltages.max() <= vdd + 1e-9
        assert voltages.min() > 0.0

    @given(seed=design_seeds)
    @settings(max_examples=10, deadline=None)
    def test_drop_bounded_by_worst_path(self, seed):
        """Max drop cannot exceed total current x worst path resistance."""
        from repro.features.resistance import shortest_path_resistances

        design = generate_design(make_fake_spec(f"b{seed}", seed=seed, pixels=16))
        system = build_reduced_system(design.grid)
        voltages = system.scatter(
            DirectSolver().solve(system.matrix, system.rhs).x
        )
        drop = design.spec.supply_voltage - voltages
        worst_path = shortest_path_resistances(design.grid).max()
        bound = design.grid.total_load_current() * worst_path
        assert drop.max() <= bound + 1e-9

    @given(seed=design_seeds)
    @settings(max_examples=10, deadline=None)
    def test_superposition(self, seed):
        """Doubling all load currents doubles every drop (linearity)."""
        from dataclasses import replace

        design = generate_design(make_fake_spec(f"l{seed}", seed=seed, pixels=16))
        system = build_reduced_system(design.grid)
        vdd = design.spec.supply_voltage
        v1 = system.scatter(DirectSolver().solve(system.matrix, system.rhs).x)

        doubled = generate_design(
            replace(design.spec, total_current=2 * design.spec.total_current)
        )
        system2 = build_reduced_system(doubled.grid)
        v2 = system2.scatter(
            DirectSolver().solve(system2.matrix, system2.rhs).x
        )
        assert np.allclose(vdd - v2, 2.0 * (vdd - v1), atol=1e-8)


class TestMNAProperties:
    @given(seed=design_seeds)
    @settings(max_examples=10, deadline=None)
    def test_row_sums_nonnegative(self, seed):
        """Reduced G is weakly diagonally dominant: row sums >= 0, with
        strictly positive sums exactly on pad-adjacent rows."""
        design = generate_design(make_fake_spec(f"m{seed}", seed=seed, pixels=16))
        system = build_reduced_system(design.grid)
        row_sums = np.asarray(system.matrix.sum(axis=1)).ravel()
        assert (row_sums >= -1e-9).all()
        assert (row_sums > 1e-12).any()  # someone touches a pad

    @given(seed=design_seeds)
    @settings(max_examples=8, deadline=None)
    def test_diagonal_dominance(self, seed):
        design = generate_design(make_fake_spec(f"d{seed}", seed=seed, pixels=16))
        matrix = build_reduced_system(design.grid).matrix
        diag = matrix.diagonal()
        off_sums = np.abs(matrix).sum(axis=1).A.ravel() - np.abs(diag)
        assert (diag >= off_sums - 1e-9).all()


class TestCurriculumProperties:
    @given(
        total=st.integers(2, 40),
        n_easy=st.integers(0, 5),
        n_hard=st.integers(1, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_subsets_nested_and_complete(self, total, n_easy, n_hard, fake_sample, real_sample):
        from repro.data.curriculum import CurriculumScheduler
        from repro.data.dataset import IRDropDataset

        dataset = IRDropDataset(
            [fake_sample] * n_easy + [real_sample] * n_hard
        )
        scheduler = CurriculumScheduler(total_epochs=total)
        previous: set[int] = set()
        for epoch in range(total):
            indices = set(scheduler.subset_indices(dataset, epoch))
            assert indices, "curriculum subset must never be empty"
            assert previous.issubset(indices)
            previous = indices
        assert previous == set(range(len(dataset)))


class TestAugmentationProperties:
    @given(turns=st.integers(0, 12))
    @settings(max_examples=20, deadline=None)
    def test_rotation_group_closure(self, turns, fake_sample):
        """Any rotation count is equivalent to its value mod 4."""
        from repro.data.augment import rotate_sample

        a = rotate_sample(fake_sample, turns)
        b = rotate_sample(fake_sample, turns % 4)
        assert np.allclose(a.label, b.label)
        assert np.allclose(a.features.data, b.features.data)

    @given(turns=st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_rotation_preserves_metrics_against_rotated_golden(
        self, turns, fake_sample
    ):
        """Rotating prediction and golden together leaves metrics fixed."""
        from repro.data.augment import rotate_sample
        from repro.train.metrics import f1_hotspot, mae

        rotated = rotate_sample(fake_sample, turns)
        assert mae(rotated.rough_label, rotated.label) == pytest.approx(
            mae(fake_sample.rough_label, fake_sample.label)
        )
        assert f1_hotspot(rotated.rough_label, rotated.label) == pytest.approx(
            f1_hotspot(fake_sample.rough_label, fake_sample.label)
        )
