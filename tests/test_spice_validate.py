"""Tests for netlist/grid validation, repair and singular-G detection."""

import numpy as np
import pytest

from repro.grid.netlist import PowerGrid
from repro.mna.stamper import build_reduced_system
from repro.spice.ast import CurrentSource, Netlist, Resistor, VoltageSource
from repro.spice.parser import parse_spice
from repro.spice.validate import (
    MIN_RESISTANCE,
    NetlistValidationError,
    floating_components,
    repair_grid,
    repair_netlist,
    singular_rows,
    validate_grid,
    validate_netlist,
)

ISLAND_DECK = """* main grid plus a floating island
R1 n1_m1_0_0 n1_m1_1000_0 1.0
R2 n1_m1_0_0 n1_m1_0_1000 1.0
I1 n1_m1_1000_0 0 0.01
V1 n1_m1_0_0 0 1.05
* island: no resistive path to any pad
R9 n1_m1_5000_5000 n1_m1_6000_5000 2.0
I9 n1_m1_6000_5000 0 0.002
.end
"""


def island_grid() -> PowerGrid:
    return PowerGrid.from_netlist(parse_spice(ISLAND_DECK))


class TestValidateNetlist:
    def test_clean_deck_no_issues(self, tiny_netlist):
        assert validate_netlist(tiny_netlist) == []

    def test_nonfinite_resistance_detected(self):
        # Negative values are rejected at Resistor construction, but NaN
        # slips through ``< 0`` — validation must still catch it.
        netlist = Netlist(
            resistors=[Resistor("R1", "a", "b", float("nan"))],
            voltage_sources=[VoltageSource("V1", "a", "0", 1.0)],
        )
        issues = validate_netlist(netlist)
        kinds = {i.kind for i in issues}
        assert "nonpositive_resistance" in kinds
        assert all(i.fatal for i in issues if i.kind == "nonpositive_resistance")

    def test_shorts_and_missing_pads_detected(self):
        netlist = Netlist(resistors=[Resistor("R1", "a", "b", 0.0)])
        kinds = {i.kind for i in validate_netlist(netlist)}
        assert kinds == {"short_resistor", "no_pads"}


class TestRepairNetlist:
    def test_clean_deck_untouched(self, tiny_netlist):
        repaired, records = repair_netlist(tiny_netlist)
        assert repaired is tiny_netlist
        assert records == []

    def test_nonfinite_resistance_clamped(self):
        netlist = Netlist(
            resistors=[
                Resistor("R1", "a", "b", float("nan")),
                Resistor("R2", "b", "c", float("inf")),
                Resistor("R3", "c", "d", 2.0),
            ],
            voltage_sources=[VoltageSource("V1", "a", "0", 1.0)],
        )
        repaired, records = repair_netlist(netlist)
        values = {r.name: r.resistance for r in repaired.resistors}
        assert values["R1"] == MIN_RESISTANCE
        assert values["R2"] == MIN_RESISTANCE
        assert values["R3"] == 2.0
        assert [r.action for r in records] == ["clamp_resistance"]
        assert records[0].count == 2

    def test_shorts_collapsed(self):
        netlist = Netlist(
            resistors=[
                Resistor("R1", "a", "b", 0.0),
                Resistor("R2", "b", "c", 1.0),
            ],
            voltage_sources=[VoltageSource("V1", "a", "0", 1.0)],
        )
        repaired, records = repair_netlist(netlist)
        assert [r.action for r in records] == ["collapse_shorts"]
        assert all(not r.is_short for r in repaired.resistors)


class TestValidateGrid:
    def test_clean_grid(self, tiny_grid):
        assert validate_grid(tiny_grid) == []

    def test_floating_island_detected(self):
        issues = validate_grid(island_grid())
        kinds = {i.kind: i for i in issues}
        assert "floating_nodes" in kinds
        assert kinds["floating_nodes"].fatal
        assert kinds["floating_nodes"].count == 2
        assert "disconnected_grid" in kinds
        assert not kinds["disconnected_grid"].fatal

    def test_no_pads_detected(self):
        netlist = Netlist(resistors=[Resistor("R1", "a", "b", 1.0)])
        grid = PowerGrid.from_netlist(netlist)
        issues = validate_grid(grid)
        assert [i.kind for i in issues] == ["no_pads"]


class TestRepairGrid:
    def test_ground_tie_makes_island_solvable(self):
        grid = island_grid()
        repaired, records = repair_grid(grid, supply_voltage=1.05)
        assert [r.action for r in records] == ["ground_tie"]
        assert floating_components(repaired) == []
        # the original grid is untouched
        assert floating_components(grid) != []
        system = build_reduced_system(repaired)
        assert np.all(system.matrix.diagonal() > 0)

    def test_isolate_strategy_zeroes_island_loads(self):
        repaired, records = repair_grid(
            island_grid(), supply_voltage=1.05, strategy="isolate"
        )
        island_nodes = [repaired.node("n1_m1_5000_5000"),
                        repaired.node("n1_m1_6000_5000")]
        assert all(n.load_current == 0.0 for n in island_nodes)
        assert "zeroed" in records[0].detail

    def test_clean_grid_returned_as_is(self, tiny_grid):
        repaired, records = repair_grid(tiny_grid, supply_voltage=1.05)
        assert repaired is tiny_grid
        assert records == []

    def test_no_pads_rejected(self):
        netlist = Netlist(resistors=[Resistor("R1", "a", "b", 1.0)])
        grid = PowerGrid.from_netlist(netlist)
        with pytest.raises(NetlistValidationError):
            repair_grid(grid, supply_voltage=1.0)

    def test_unknown_strategy_rejected(self, tiny_grid):
        with pytest.raises(ValueError, match="strategy"):
            repair_grid(tiny_grid, supply_voltage=1.0, strategy="pray")


class TestSingularDetection:
    def test_singular_rows_found(self, tiny_grid):
        system = build_reduced_system(tiny_grid)
        assert singular_rows(system.matrix).size == 0
        from repro.testing.faults import make_singular

        assert list(singular_rows(make_singular(system.matrix, row=1))) == [1]

    def test_stamper_rejects_corrupt_diagonal(self):
        # A NaN resistance slips past Resistor construction but must be
        # caught at stamping time, before any solver sees the system.
        netlist = Netlist(
            resistors=[Resistor("R1", "n1_m1_0_0", "n1_m1_1000_0", float("nan"))],
            current_sources=[CurrentSource("I1", "n1_m1_1000_0", "0", 0.01)],
            voltage_sources=[VoltageSource("V1", "n1_m1_0_0", "0", 1.0)],
        )
        grid = PowerGrid.from_netlist(netlist)
        with pytest.raises(ValueError, match="singular or indefinite"):
            build_reduced_system(grid)


class TestEndToEndDegradation:
    def test_simulator_survives_floating_island(self):
        from repro.solvers.powerrush import PowerRushSimulator

        report = PowerRushSimulator().simulate_text(ISLAND_DECK)
        assert np.all(np.isfinite(report.ir_drop))
        assert [r.action for r in report.diagnostics.repairs] == ["ground_tie"]
        kinds = {i.kind for i in report.diagnostics.validation}
        assert "floating_nodes" in kinds
        assert report.diagnostics.degraded
        # the ground-tied island reads (near) zero drop: bounded answer
        island = report.grid.node("n1_m1_5000_5000")
        assert report.ir_drop[island.index] <= 0.05

    def test_strict_mode_still_raises(self):
        from repro.solvers.powerrush import PowerRushSimulator

        with pytest.raises(ValueError, match="no resistive path"):
            PowerRushSimulator(robust=False).simulate_text(ISLAND_DECK)
