"""Unit tests for optimisers and gradient clipping."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, clip_grad_norm


def quadratic_step(optimizer, parameter, target):
    """One gradient step on 0.5*||p - target||^2."""
    parameter.zero_grad()
    parameter.grad += parameter.data - target
    optimizer.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([10.0, -10.0]))
        optimizer = SGD([p], lr=0.1)
        target = np.array([1.0, 2.0])
        for _ in range(200):
            quadratic_step(optimizer, p, target)
        assert np.allclose(p.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        def loss_after(momentum, steps=25):
            p = Parameter(np.array([10.0]))
            optimizer = SGD([p], lr=0.02, momentum=momentum)
            for _ in range(steps):
                quadratic_step(optimizer, p, np.array([0.0]))
            return abs(float(p.data[0]))

        assert loss_after(0.9) < loss_after(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        optimizer = SGD([p], lr=0.1, weight_decay=1.0)
        p.zero_grad()  # zero data-gradient; only decay acts
        optimizer.step()
        assert p.data[0] == pytest.approx(0.9)

    def test_invalid_hyperparams(self):
        p = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([10.0, -4.0]))
        optimizer = Adam([p], lr=0.3)
        target = np.array([1.0, 2.0])
        for _ in range(300):
            quadratic_step(optimizer, p, target)
        assert np.allclose(p.data, target, atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        # bias correction makes the very first Adam step ~= lr * sign(grad)
        p = Parameter(np.array([5.0]))
        optimizer = Adam([p], lr=0.1)
        p.grad += 3.7
        optimizer.step()
        assert p.data[0] == pytest.approx(5.0 - 0.1, abs=1e-6)

    def test_scale_invariance(self):
        """Adam steps are (nearly) invariant to gradient scale."""
        outs = []
        for scale in (1.0, 1000.0):
            p = Parameter(np.array([1.0]))
            optimizer = Adam([p], lr=0.01)
            for _ in range(10):
                p.zero_grad()
                p.grad += scale
                optimizer.step()
            outs.append(float(p.data[0]))
        assert outs[0] == pytest.approx(outs[1], abs=1e-8)

    def test_invalid_hyperparams(self):
        p = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            Adam([p], lr=-1.0)
        with pytest.raises(ValueError):
            Adam([p], betas=(1.0, 0.9))


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad += 10.0
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad += 0.01
        clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, 0.01)

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([Parameter(np.zeros(1))], max_norm=0.0)
