"""Unit tests for fusion-stack assembly and its ablation switches."""

import numpy as np
import pytest

from repro.features.fusion import FeatureConfig, assemble_feature_stack, channel_names
from repro.solvers.powerrush import PowerRushSimulator


@pytest.fixture(scope="module")
def rough(fake_design):
    return PowerRushSimulator(max_iterations=2).simulate_grid(fake_design.grid)


class TestFullStack:
    def test_channel_layout(self, fake_design, rough):
        stack = assemble_feature_stack(
            fake_design.geometry,
            fake_design.grid,
            FeatureConfig(),
            voltages=rough.voltages,
            supply_voltage=1.05,
        )
        layers = fake_design.grid.layers_present()
        expected = channel_names(FeatureConfig(), layers)
        assert stack.channels == expected
        # 3 layers: 3 numerical + 3 current + 4 structural = 10
        assert stack.num_channels == 2 * len(layers) + 4

    def test_structural_channels_normalized(self, fake_design, rough):
        stack = assemble_feature_stack(
            fake_design.geometry,
            fake_design.grid,
            FeatureConfig(),
            voltages=rough.voltages,
            supply_voltage=1.05,
        )
        assert stack["effective_distance"].max() == pytest.approx(1.0)
        assert stack["pdn_density"].min() == pytest.approx(0.0)

    def test_numerical_channels_keep_physical_scale(self, fake_design, rough):
        config = FeatureConfig(numerical_scale=20.0)
        stack = assemble_feature_stack(
            fake_design.geometry,
            fake_design.grid,
            config,
            voltages=rough.voltages,
            supply_voltage=1.05,
        )
        raw = assemble_feature_stack(
            fake_design.geometry,
            fake_design.grid,
            FeatureConfig(normalize=False),
            voltages=rough.voltages,
            supply_voltage=1.05,
        )
        assert np.allclose(stack["numerical_m1"], 20.0 * raw["numerical_m1"])

    def test_missing_voltages_raise(self, fake_design):
        with pytest.raises(ValueError, match="requires voltages"):
            assemble_feature_stack(
                fake_design.geometry, fake_design.grid, FeatureConfig()
            )


class TestAblations:
    def test_without_numerical(self, fake_design):
        config = FeatureConfig(use_numerical=False)
        stack = assemble_feature_stack(
            fake_design.geometry, fake_design.grid, config
        )
        assert not any(c.startswith("numerical") for c in stack.channels)

    def test_flat_representation(self, fake_design, rough):
        config = FeatureConfig(hierarchical=False)
        stack = assemble_feature_stack(
            fake_design.geometry,
            fake_design.grid,
            config,
            voltages=rough.voltages,
            supply_voltage=1.05,
        )
        assert stack.channels == [
            "numerical",
            "current",
            "effective_distance",
            "pdn_density",
        ]

    def test_flat_without_numerical_is_iredge_triple(self, fake_design):
        config = FeatureConfig(use_numerical=False, hierarchical=False)
        stack = assemble_feature_stack(
            fake_design.geometry, fake_design.grid, config
        )
        assert stack.channels == ["current", "effective_distance", "pdn_density"]

    def test_channel_names_helper_consistent(self, fake_design, rough):
        for config in (
            FeatureConfig(),
            FeatureConfig(use_numerical=False),
            FeatureConfig(hierarchical=False),
            FeatureConfig(use_numerical=False, hierarchical=False),
        ):
            stack = assemble_feature_stack(
                fake_design.geometry,
                fake_design.grid,
                config,
                voltages=rough.voltages,
                supply_voltage=1.05,
            )
            assert stack.channels == channel_names(
                config, fake_design.grid.layers_present()
            )
