"""Tests for the tiered compute-kernel backend."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import kernels
from repro.core.kernels import (
    BackendUnavailableError,
    available_backends,
    backend_name,
    csr_matvec,
    matmul,
    numba_available,
    set_backend,
    use_backend,
)

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed"
)


@pytest.fixture(autouse=True)
def _reset_backend():
    set_backend(None)
    yield
    set_backend(None)


class TestSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(kernels.BACKEND_ENV, raising=False)
        set_backend(None)
        assert backend_name() == "numpy"

    def test_env_variable_selects(self, monkeypatch):
        monkeypatch.setenv(kernels.BACKEND_ENV, "numpy")
        set_backend(None)
        assert backend_name() == "numpy"

    def test_set_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv(kernels.BACKEND_ENV, "nonsense")
        set_backend("numpy")
        assert backend_name() == "numpy"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            set_backend("fortran")

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.BACKEND_ENV, "fortran")
        set_backend(None)
        with pytest.raises(ValueError):
            backend_name()

    def test_numba_unavailable_raises(self):
        if numba_available():
            pytest.skip("numba installed in this environment")
        with pytest.raises(BackendUnavailableError):
            set_backend("numba")

    def test_use_backend_restores(self):
        before = backend_name()
        with use_backend("numpy"):
            assert backend_name() == "numpy"
        assert backend_name() == before

    def test_available_backends_lists_numpy(self):
        names = available_backends()
        assert "numpy" in names
        assert ("numba" in names) == numba_available()


class TestNumpyTier:
    """The numpy tier must be *bitwise* identical to direct numpy/scipy."""

    def test_matmul_bitwise_fp64(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((17, 9))
        b = rng.standard_normal((9, 13))
        out = matmul(a, b)
        assert out.dtype == np.float64
        assert np.array_equal(out, np.matmul(a, b))

    def test_matmul_bitwise_fp32_batched(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((3, 5, 7)).astype(np.float32)
        b = rng.standard_normal((3, 7, 4)).astype(np.float32)
        assert np.array_equal(matmul(a, b), np.matmul(a, b))

    def test_matmul_out_param(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((4, 6))
        b = rng.standard_normal((6, 3))
        out = np.empty((4, 3))
        returned = matmul(a, b, out=out)
        assert returned is out
        assert np.array_equal(out, np.matmul(a, b))

    def test_csr_matvec_bitwise(self):
        rng = np.random.default_rng(3)
        dense = rng.standard_normal((20, 20))
        dense[np.abs(dense) < 1.0] = 0.0
        matrix = sp.csr_matrix(dense)
        x = rng.standard_normal(20)
        assert np.array_equal(csr_matvec(matrix, x), matrix @ x)


@needs_numba
class TestNumbaTier:
    """Numba tier agrees with numpy to tight float tolerances."""

    def test_gemm2d_fp32(self):
        rng = np.random.default_rng(4)
        a = rng.standard_normal((33, 47)).astype(np.float32)
        b = rng.standard_normal((47, 29)).astype(np.float32)
        with use_backend("numba"):
            got = matmul(a, b)
        np.testing.assert_allclose(got, np.matmul(a, b), rtol=1e-5, atol=1e-5)

    def test_gemm3d_fp32(self):
        rng = np.random.default_rng(5)
        a = rng.standard_normal((4, 18, 23)).astype(np.float32)
        b = rng.standard_normal((4, 23, 11)).astype(np.float32)
        with use_backend("numba"):
            got = matmul(a, b)
        np.testing.assert_allclose(got, np.matmul(a, b), rtol=1e-5, atol=1e-5)

    def test_fp64_matmul_stays_on_numpy(self):
        # The fp64 paths are bitwise-frozen: the numba tier must not touch
        # them even when selected.
        rng = np.random.default_rng(6)
        a = rng.standard_normal((12, 12))
        b = rng.standard_normal((12, 12))
        with use_backend("numba"):
            got = matmul(a, b)
        assert np.array_equal(got, np.matmul(a, b))

    def test_spmv(self):
        rng = np.random.default_rng(7)
        dense = rng.standard_normal((40, 40))
        dense[np.abs(dense) < 1.2] = 0.0
        matrix = sp.csr_matrix(dense)
        x = rng.standard_normal(40)
        with use_backend("numba"):
            got = csr_matvec(matrix, x)
        np.testing.assert_allclose(got, matrix @ x, rtol=1e-12, atol=1e-12)


class TestConfigIntegration:
    def test_fusion_config_rejects_unknown_backend(self):
        from repro.core.config import FusionConfig

        with pytest.raises(ValueError):
            FusionConfig(backend="fortran")

    def test_fusion_config_accepts_numpy(self):
        from repro.core.config import FusionConfig

        assert FusionConfig(backend="numpy").backend == "numpy"

    def test_cli_flag_rejects_missing_numba(self, tmp_path):
        if numba_available():
            pytest.skip("numba installed in this environment")
        from repro.cli import EXIT_BAD_INPUT, main

        deck = tmp_path / "d.sp"
        deck.write_text("* empty\n.end\n")
        assert main(["--backend", "numba", "simulate", str(deck)]) == (
            EXIT_BAD_INPUT
        )
