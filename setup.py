"""Setuptools shim.

The sandboxed environment has no `wheel` package and no network, so PEP-517
editable installs (which need bdist_wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` perform a legacy
develop install; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
