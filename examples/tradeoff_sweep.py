"""Accuracy/efficiency trade-off sweep (the Fig. 7 experiment, scriptable).

Compares PowerRush (pure AMG-PCG) with IR-Fusion across solver iteration
budgets and prints the crossover point:

    python examples/tradeoff_sweep.py
"""

from __future__ import annotations

from repro import FusionConfig
from repro.core.experiment import run_tradeoff_study
from repro.eval.report import format_sweep_table
from repro.train.trainer import TrainConfig


def main() -> None:
    config = FusionConfig(
        pixels=32,
        num_fake=8,
        num_real_train=3,
        num_real_test=2,
        base_channels=6,
        depth=3,
        train=TrainConfig(epochs=10, batch_size=8, use_curriculum=True),
    )
    print("Training IR-Fusion once, then sweeping solver budgets 1..8 ...")
    result = run_tradeoff_study(config, iterations=list(range(1, 9)))

    print()
    print(
        format_sweep_table(
            result.iterations,
            {
                "PowerRush MAE": [v * 1e4 for v in result.powerrush_mae],
                "IR-Fusion MAE": [v * 1e4 for v in result.fusion_mae],
                "PowerRush F1": result.powerrush_f1,
                "IR-Fusion F1": result.fusion_f1,
            },
            title="Trade-off study (MAE in 1e-4 V)",
        )
    )
    crossing = result.fusion_wins_mae_at()
    best_rush = min(result.powerrush_mae) * 1e4
    if crossing is None:
        print(f"\nIR-Fusion never reached PowerRush's best MAE "
              f"({best_rush:.2f}e-4 V) in this sweep.")
    else:
        print(
            f"\nIR-Fusion reaches PowerRush's best MAE ({best_rush:.2f}e-4 V, "
            f"10-iteration quality) after only {crossing} iteration(s): "
            f"the fusion cuts the required solver effort by "
            f"{result.iterations[-1] - crossing} iterations."
        )


if __name__ == "__main__":
    main()
