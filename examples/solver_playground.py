"""Numerical-solver playground: no ML, just the PG analysis substrate.

    python examples/solver_playground.py

Builds a synthetic power grid, stamps the MNA system and races four
solvers on it (direct LU, CG, Jacobi-PCG, AMG-PCG), then shows how the
rough 2-iteration AMG-PCG map compares with the converged answer —
the gap the ML stage of IR-Fusion closes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.synthetic import generate_design, make_fake_spec
from repro.eval.report import ascii_map, side_by_side
from repro.grid.raster import layer_values_image
from repro.mna.stamper import build_reduced_system
from repro.solvers.amg_pcg import AMGPCGSolver
from repro.solvers.base import SolverOptions
from repro.solvers.cg import CGSolver, JacobiPCGSolver
from repro.solvers.direct import DirectSolver


def main() -> None:
    design = generate_design(make_fake_spec("playground", seed=42, pixels=32))
    grid = design.grid
    print(f"Design: {grid.num_nodes} nodes, {grid.num_wires} wires, "
          f"{len(grid.pads())} pads, layers {grid.layers_present()}")

    system = build_reduced_system(grid)
    print(f"Reduced system: n={system.size}, nnz={system.matrix.nnz}\n")

    options = SolverOptions(tol=1e-10, max_iterations=5000)
    solvers = {
        "direct LU": DirectSolver(),
        "CG": CGSolver(options),
        "Jacobi-PCG": JacobiPCGSolver(options),
        "AMG-PCG": AMGPCGSolver(options),
    }
    print(f"{'solver':<12s} {'iters':>6s} {'relres':>10s} {'time(s)':>9s}")
    golden_x = None
    for name, solver in solvers.items():
        start = time.perf_counter()
        result = solver.solve(system.matrix, system.rhs)
        elapsed = time.perf_counter() - start
        if name == "direct LU":
            golden_x = result.x
        print(f"{name:<12s} {result.iterations:>6d} "
              f"{system.relative_residual(result.x):>10.2e} {elapsed:>9.4f}")

    # the rough-solution regime the fusion framework exploits
    rough = AMGPCGSolver(SolverOptions(tol=1e-16, max_iterations=2)).solve(
        system.matrix, system.rhs
    )
    assert golden_x is not None
    golden_map = layer_values_image(
        design.geometry, grid, 1.05 - system.scatter(golden_x), layer=1
    )
    rough_map = layer_values_image(
        design.geometry, grid, 1.05 - system.scatter(rough.x), layer=1
    )
    gap = np.abs(rough_map - golden_map)
    print(f"\nRough 2-iteration solve: mean |error| = "
          f"{gap.mean() * 1e4:.2f}e-4 V, worst = {gap.max() * 1e4:.2f}e-4 V")
    print("\nConverged vs rough IR-drop maps (the ML stage closes this gap):")
    print(side_by_side(
        [ascii_map(golden_map, 32), ascii_map(rough_map, 32)],
        ["converged", "rough (2 iters)"],
    ))


if __name__ == "__main__":
    main()
