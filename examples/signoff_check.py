"""IR-drop signoff with IR-Fusion: budget check + violation regions.

    python examples/signoff_check.py

Trains the fusion pipeline, analyses a held-out design and runs a
signoff-style check of the predicted map against a drop budget (5 % of
vdd), printing the violating regions a designer would need to fix — then
verifies the verdict against the golden direct solve.
"""

from __future__ import annotations

from repro import FusionConfig, IRFusionPipeline
from repro.data.dataset import golden_ir_drop
from repro.eval.signoff import check_ir_drop
from repro.train.trainer import TrainConfig


def main() -> None:
    config = FusionConfig(
        pixels=32,
        num_fake=6,
        num_real_train=2,
        num_real_test=1,
        base_channels=6,
        depth=3,
        train=TrainConfig(epochs=10, batch_size=8, use_curriculum=True),
    )
    pipeline = IRFusionPipeline(config)
    print("Training IR-Fusion ...")
    pipeline.train()

    _, test_designs = pipeline.generate_designs()
    design = test_designs[0]
    vdd = design.spec.supply_voltage
    budget = 0.05 * vdd

    print(f"\nAnalysing {design.name!r}; budget = 5% of vdd = "
          f"{budget * 1e3:.1f} mV")
    result = pipeline.analyze_design(design)
    predicted = result.signoff(budget)
    print(f"\nPredicted verdict: {predicted.summary()}")
    for i, region in enumerate(predicted.regions[:5], start=1):
        r0, c0, r1, c1 = region.bounding_box
        print(f"  region {i}: {region.pixel_count:4d} px, peak "
              f"{region.worst_drop * 1e3:6.2f} mV, bbox "
              f"rows {r0}-{r1} cols {c0}-{c1}")

    golden_verdict = check_ir_drop(golden_ir_drop(design), budget)
    print(f"\nGolden verdict   : {golden_verdict.summary()}")
    agree = predicted.passed == golden_verdict.passed
    print(f"\nPrediction and golden signoff {'AGREE' if agree else 'DISAGREE'} "
          f"on pass/fail.")


if __name__ == "__main__":
    main()
