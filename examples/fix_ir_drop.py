"""Fix an IR-drop violation by greedy pad placement.

    python examples/fix_ir_drop.py

Takes an irregular design and asks the greedy optimiser to claw back 15 %
of the worst-case drop by adding pads (each candidate trial is a full
AMG-PCG re-solve), reporting the drop trajectory.
"""

from __future__ import annotations

from repro.data.synthetic import generate_design, make_real_spec
from repro.opt.pad_placement import greedy_pad_placement
from repro.solvers.powerrush import PowerRushSimulator


def main() -> None:
    design = generate_design(make_real_spec("violating", seed=77, pixels=32))

    report = PowerRushSimulator(tol=1e-10).simulate_grid(design.grid)
    budget = 0.85 * report.worst_drop()  # claw back 15 % of the worst case
    print(f"Design {design.name!r}: worst drop "
          f"{report.worst_drop() * 1e3:.2f} mV; target budget "
          f"{budget * 1e3:.2f} mV (VIOLATION)")

    print("\nRunning greedy pad placement (each candidate = one AMG-PCG "
          "re-solve) ...")
    result = greedy_pad_placement(
        design.netlist,
        budget_volts=budget,
        max_new_pads=4,
        max_candidates=12,
    )
    print("\nWorst-drop trajectory (mV):",
          [round(v * 1e3, 2) for v in result.worst_drop_history])
    for i, pad in enumerate(result.added_pads, start=1):
        print(f"  pad {i}: {pad}")
    verdict = "met" if result.met_budget else "NOT met"
    print(f"\nBudget {verdict} after {len(result.added_pads)} new pad(s); "
          f"total improvement {result.improvement * 1e3:.2f} mV.")


if __name__ == "__main__":
    main()
