"""Train and compare all seven IR-drop predictors (mini Table I).

    python examples/compare_baselines.py

Each baseline consumes the flat current / effective-distance / PDN-density
features; IR-Fusion consumes the hierarchical numerical-structural stack.
Runs a reduced configuration so the whole comparison finishes in a few
minutes on CPU.
"""

from __future__ import annotations

from repro import FusionConfig
from repro.core.experiment import run_main_results
from repro.eval.report import format_metrics_table
from repro.train.trainer import TrainConfig


def main() -> None:
    config = FusionConfig(
        pixels=32,
        num_fake=8,
        num_real_train=3,
        num_real_test=2,
        base_channels=6,
        depth=3,
        train=TrainConfig(epochs=8, batch_size=8),
    )
    print("Training 7 models (this is the long part) ...")
    results = run_main_results(config)
    print()
    print(format_metrics_table(results, title="Mini Table I"))
    best = min(results, key=lambda name: results[name].mae)
    print(f"\nLowest MAE: {best}")


if __name__ == "__main__":
    main()
