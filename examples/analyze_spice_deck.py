"""Analyse an external SPICE power-grid deck with a trained IR-Fusion model.

Demonstrates the deployment flow on a deck the pipeline has never seen:

    python examples/analyze_spice_deck.py [path/to/deck.sp]

Without an argument the script writes a demo deck (exported from the
synthetic generator in the ICCAD-2023 node-name grammar) and analyses it.
The same entry point accepts any deck whose nodes follow the
``n{net}_m{layer}_{x}_{y}`` naming convention.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import FusionConfig, IRFusionPipeline
from repro.data.synthetic import generate_design, make_real_spec
from repro.eval.report import ascii_map
from repro.spice.writer import write_spice
from repro.train.trainer import TrainConfig


def train_pipeline() -> IRFusionPipeline:
    config = FusionConfig(
        pixels=32,
        num_fake=6,
        num_real_train=2,
        num_real_test=1,
        base_channels=6,
        depth=3,
        train=TrainConfig(epochs=8, batch_size=8, use_curriculum=True),
    )
    pipeline = IRFusionPipeline(config)
    print("Training IR-Fusion ...")
    pipeline.train()
    return pipeline


def demo_deck(path: Path) -> Path:
    """Export a never-seen synthetic design as a SPICE file."""
    design = generate_design(
        make_real_spec("external_demo", seed=987654, pixels=32)
    )
    write_spice(design.netlist, path)
    print(f"Wrote demo deck to {path} "
          f"({design.grid.num_nodes} nodes, {len(design.netlist)} elements)")
    return path


def main() -> None:
    if len(sys.argv) > 1:
        deck = Path(sys.argv[1])
    else:
        deck = demo_deck(Path("/tmp/ir_fusion_demo_deck.sp"))

    pipeline = train_pipeline()
    print(f"\nAnalysing {deck} ...")
    result = pipeline.analyze_file(deck)

    print(f"  solver stage   : {result.solver_seconds * 1e3:7.1f} ms "
          f"({pipeline.config.solver_iterations} AMG-PCG iterations)")
    print(f"  feature stage  : {result.feature_seconds * 1e3:7.1f} ms "
          f"({result.features.num_channels} channels)")
    print(f"  model stage    : {result.model_seconds * 1e3:7.1f} ms")
    print(f"  worst predicted IR drop: "
          f"{result.worst_predicted_drop() * 1e3:.2f} mV")
    if result.report is not None:
        print(f"  rough solver residual  : "
              f"{result.report.solve.final_residual:.3e}")

    print("\nPredicted bottom-layer IR-drop map:")
    print(ascii_map(result.predicted_drop, 48))


if __name__ == "__main__":
    main()
