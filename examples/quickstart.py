"""Quickstart: train IR-Fusion on a small synthetic suite and analyse a design.

Runs in about a minute on a laptop CPU:

    python examples/quickstart.py

Steps demonstrated:
1. configure the pipeline,
2. train on generated fake+real designs (augmentation + curriculum),
3. analyse a held-out design end to end (SPICE -> AMG-PCG -> features ->
   Inception Attention U-Net -> IR-drop map),
4. compare the fused prediction against the golden direct solve.
"""

from __future__ import annotations

from repro import FusionConfig, IRFusionPipeline
from repro.data.dataset import golden_ir_drop
from repro.eval.report import ascii_map, side_by_side
from repro.train.metrics import evaluate_prediction
from repro.train.trainer import TrainConfig


def main() -> None:
    config = FusionConfig(
        pixels=32,
        num_fake=6,
        num_real_train=2,
        num_real_test=2,
        solver_iterations=2,  # the "rough solution" budget
        base_channels=6,
        depth=3,
        train=TrainConfig(epochs=10, batch_size=8, lr=1.5e-3,
                          use_curriculum=True),
    )
    pipeline = IRFusionPipeline(config)

    print("Training IR-Fusion on the synthetic suite ...")
    history = pipeline.train()
    print(f"  final training loss: {history.final_loss:.4f}")

    _, test_designs = pipeline.generate_designs()
    design = test_designs[0]
    print(f"\nAnalysing held-out design {design.name!r} "
          f"({design.grid.num_nodes} nodes, {design.grid.num_wires} wires)")
    result = pipeline.analyze_design(design)
    print(
        f"  stage timing: solver {result.solver_seconds * 1e3:.1f} ms, "
        f"features {result.feature_seconds * 1e3:.1f} ms, "
        f"model {result.model_seconds * 1e3:.1f} ms"
    )

    golden = golden_ir_drop(design)
    fused = evaluate_prediction(result.predicted_drop, golden)
    rough = evaluate_prediction(result.rough_drop, golden)
    print("\nAccuracy vs the golden direct solve (errors in 1e-4 V):")
    print(f"  rough 2-iteration solve : MAE {rough.mae * 1e4:7.2f}  "
          f"F1 {rough.f1:.3f}  MIRDE {rough.mirde * 1e4:7.2f}")
    print(f"  IR-Fusion prediction    : MAE {fused.mae * 1e4:7.2f}  "
          f"F1 {fused.f1:.3f}  MIRDE {fused.mirde * 1e4:7.2f}")

    print("\nGolden vs predicted IR-drop maps:")
    print(
        side_by_side(
            [ascii_map(golden, 32), ascii_map(result.predicted_drop, 32)],
            ["golden", "IR-Fusion"],
        )
    )


if __name__ == "__main__":
    main()
