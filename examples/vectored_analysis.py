"""Vectored (multi-corner) static IR-drop analysis.

    python examples/vectored_analysis.py

Builds one synthetic design and runs three activity vectors against it —
uniform background, left-half burst, right-half burst — reusing a single
AMG hierarchy across the solves (the amortisation that makes vectored
analysis cheap).  Reports the per-vector worst drops and the combined
worst-case map, MAVIREC-style.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import generate_design, make_fake_spec
from repro.eval.report import ascii_map
from repro.grid.raster import layer_values_image
from repro.solvers.vectored import VectoredAnalyzer


def main() -> None:
    design = generate_design(make_fake_spec("vectored", seed=21, pixels=32))
    grid = design.grid
    print(f"Design: {grid.num_nodes} nodes, {len(grid.loads())} loads")

    loads = grid.loads()
    per_load = design.spec.total_current / len(loads)
    mid_x = design.geometry.width_nm // 2
    uniform = {n.index: per_load for n in loads}
    left = {
        n.index: (3.0 * per_load if n.structured.x < mid_x else 0.2 * per_load)
        for n in loads
    }
    right = {
        n.index: (3.0 * per_load if n.structured.x >= mid_x else 0.2 * per_load)
        for n in loads
    }

    analyzer = VectoredAnalyzer(grid)
    result = analyzer.run([uniform, left, right])
    names = ["uniform", "left burst", "right burst"]
    for name, drops in zip(names, result.per_vector_drop):
        print(f"  {name:12s} worst drop {drops.max() * 1e3:6.2f} mV")
    drop, node, vector = result.global_worst()
    print(f"\nGlobal worst case: {drop * 1e3:.2f} mV at node "
          f"{grid.node(node).name!r} under vector {names[vector]!r}")

    worst_map = layer_values_image(
        design.geometry, grid, result.worst_drop, layer=1
    )
    print("\nWorst-case drop map (max over all vectors):")
    print(ascii_map(worst_map, 48))

    share = {
        name: float(np.mean(result.worst_vector == i))
        for i, name in enumerate(names)
    }
    print("\nWhich vector dominates each node:",
          {k: f"{v:.0%}" for k, v in share.items()})


if __name__ == "__main__":
    main()
