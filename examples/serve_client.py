"""Minimal client for the `repro.serve` analysis daemon.

Posts a SPICE deck to a running daemon, prints the analysis summary and
(optionally) validates the inline observability trace against the span
schema and the metric-name registry.  Doubles as the CI `serve-smoke`
probe:

    python -m repro.serve --model-dir runs/models --port 8080 &
    python examples/serve_client.py --deck decks/chip.sp --port 8080 \
        --trace inline --check-observability

Exits non-zero on any HTTP error, schema violation, or unregistered
metric name, so it is safe to use as a smoke-test assertion.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request


def _request(url: str, payload: dict | None = None, timeout: float = 300.0) -> dict:
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(url, data=data, headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--deck", required=True, help="SPICE netlist file to analyse")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--model", default=None, help="model name (optional iff one model served)")
    parser.add_argument("--deadline", type=float, default=None, help="cooperative budget in seconds")
    parser.add_argument("--trace", choices=("none", "inline", "file"), default="none")
    parser.add_argument(
        "--check-observability",
        action="store_true",
        help="validate the inline trace and /healthz + /metrics (smoke-test mode)",
    )
    args = parser.parse_args(argv)

    base = f"http://{args.host}:{args.port}"
    with open(args.deck, "r", encoding="utf-8") as handle:
        deck = handle.read()

    payload: dict = {"netlist": deck, "trace": args.trace}
    if args.model is not None:
        payload["model"] = args.model
    if args.deadline is not None:
        payload["deadline_seconds"] = args.deadline

    try:
        body = _request(f"{base}/analyze", payload)
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace")
        print(f"FAIL: POST /analyze -> HTTP {exc.code}: {detail}", file=sys.stderr)
        return 1

    if body.get("state") != "done":
        print(f"FAIL: job finished in state {body.get('state')!r}: {body}", file=sys.stderr)
        return 1

    result = body["result"]
    print(f"model              {result['model']} ({result['model_fingerprint'][:12]})")
    print(f"worst IR drop      {result['worst_predicted_drop_volts']:.6f} V")
    print(f"mean IR drop       {result['mean_predicted_drop_volts']:.6f} V")
    print(f"duration           {result['duration_seconds']:.3f} s  stages={result['stage_seconds']}")
    print(f"amg_setup_cache    {result['amg_setup_cache']}")

    if not args.check_observability:
        return 0

    failures: list[str] = []
    if args.trace == "inline":
        from repro.obs.export import registry_errors, validate_trace_lines

        lines = result.get("trace")
        if not lines:
            failures.append("response carried no inline trace")
        else:
            failures += [f"trace schema: {err}" for err in validate_trace_lines(lines)]
            failures += [f"trace registry: {err}" for err in registry_errors(lines)]

    health = _request(f"{base}/healthz", timeout=30.0)
    if health.get("status") not in ("ok", "draining"):
        failures.append(f"/healthz reported {health!r}")

    metrics = _request(f"{base}/metrics", timeout=30.0)
    if metrics.get("counters", {}).get("serve.completed", 0) < 1:
        failures.append(f"/metrics missing serve.completed: {metrics.get('counters')}")
    if "amg_setup_cache" not in metrics:
        failures.append("/metrics missing amg_setup_cache block")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("observability checks passed (trace schema, registry, /healthz, /metrics)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
