"""Wire-current (electromigration) checking after a PG solve.

    python examples/em_check.py

Solves a synthetic design, extracts every wire's current and checks it
against a per-layer current budget; prints the supplied current per pad
and the worst offending wires.
"""

from __future__ import annotations

from repro.data.synthetic import generate_design, make_real_spec
from repro.eval.em import check_wire_currents
from repro.mna.post import pad_currents
from repro.solvers.powerrush import PowerRushSimulator


def main() -> None:
    design = generate_design(make_real_spec("em_demo", seed=31, pixels=24))
    grid = design.grid
    report = PowerRushSimulator(tol=1e-11).simulate_grid(grid)
    print(f"Design: {grid.num_nodes} nodes, {grid.num_wires} wires; "
          f"total load {grid.total_load_current():.3f} A")

    print("\nPer-pad supplied current:")
    for node_index, amps in pad_currents(grid, report.voltages).items():
        print(f"  {grid.node(node_index).name:<22s} {amps * 1e3:8.2f} mA")

    # upper metals are thicker: scale the budget up layer by layer
    layer_scale = {1: 1.0, 2: 2.0, 3: 4.0, 4: 8.0}
    budget = 0.6 * grid.total_load_current() / len(grid.pads())
    em = check_wire_currents(
        grid, report.voltages, limit_amps=budget, layer_scale=layer_scale
    )
    print(f"\n{em.summary()}")
    for violation in em.violations[:5]:
        print(f"  {violation.wire_name:<8s} "
              f"{violation.node_a} -> {violation.node_b}: "
              f"{violation.current * 1e3:7.2f} mA "
              f"(limit {violation.limit * 1e3:6.2f} mA, "
              f"{violation.overdrive:.1f}x)")


if __name__ == "__main__":
    main()
