"""Dynamic (transient) IR-drop analysis with decap exploration.

    python examples/transient_analysis.py

Simulates a current pulse on a synthetic grid with backward Euler
(constant step, one sparse factorisation — the KLU/CHOLMOD usage pattern
the paper's introduction describes) and shows how on-die decap trades
peak dynamic droop, then compares the dynamic envelope against the static
answer.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import generate_design, make_fake_spec
from repro.solvers.powerrush import PowerRushSimulator
from repro.transient.simulator import TransientSimulator
from repro.transient.stamper import uniform_decap
from repro.transient.waveforms import PulseWaveform


def main() -> None:
    design = generate_design(make_fake_spec("dyn", seed=8, pixels=24))
    grid = design.grid
    print(f"Design: {grid.num_nodes} nodes, {len(grid.loads())} loads")

    # a localized activity burst: 5x overdrive on the hottest block
    loads = grid.loads()
    burst_nodes = loads[: len(loads) // 8]
    waveforms = {
        n.index: PulseWaveform(
            low=n.load_current,
            high=8.0 * n.load_current,
            start=5e-9,
            width=3e-9,  # short burst: decap has time constants to fight
        )
        for n in burst_nodes
    }

    static = PowerRushSimulator(tol=1e-10).simulate_grid(grid)
    print(f"Static worst drop: {static.worst_drop() * 1e3:.2f} mV\n")

    print(f"{'decap/load':>12s} {'peak drop':>10s} {'peak time':>10s}")
    for decap in (1e-13, 1e-11, 3e-10):
        sim = TransientSimulator(grid, uniform_decap(grid, decap))
        result = sim.run(waveforms, t_end=20e-9, dt=0.25e-9)
        peak, when, _ = result.peak()
        print(f"{decap:>12.0e} {peak * 1e3:>8.2f}mV {when * 1e9:>8.1f}ns")

    sim = TransientSimulator(grid, uniform_decap(grid, 1e-11))
    result = sim.run(waveforms, t_end=20e-9, dt=0.25e-9)
    worst = result.worst_drop_over_time()
    print("\nWorst drop over time (one char per 0.25 ns, '#' = near peak):")
    peak = worst.max()
    line = "".join(
        "#" if v > 0.9 * peak else "+" if v > 0.6 * peak else "-"
        if v > 0.3 * peak else "."
        for v in worst
    )
    print(f"  {line}")
    print(f"\nDynamic envelope worst node drop: "
          f"{result.envelope().max() * 1e3:.2f} mV "
          f"(static was {static.worst_drop() * 1e3:.2f} mV)")


if __name__ == "__main__":
    main()
